package server

// Streaming ingestion sessions: the serving path for the paper's §2.3
// "exploit low-quality SID as it arrives" workload. A session is a
// stateful, bounded stream processor living between HTTP requests:
//
//   - POST /v1/stream/open creates a session (lateness, lanes and
//     maxspeed are per-session query parameters).
//   - POST /v1/stream/ingest?session=ID feeds a chunk of point CSV
//     rows "id,t,x,y" (header optional). The chunk is parsed fully
//     before any of it is applied, so a malformed or disconnected
//     chunk is rejected atomically. Rows fan out into keyed lanes
//     (stream.FanOut: a source id always lands in the same lane), each
//     lane reorders under the session's bounded-lateness watermark,
//     and released events run through the incremental cleaner — a
//     physical speed gate, plus an online HMM map matcher per source
//     when the service carries a road network.
//   - GET /v1/stream/{id}/results drains the cleaned points released
//     so far as NDJSON (or CSV with ?format=csv); ?flush=1 first
//     flushes the reorder buffers and matcher lag — end of stream.
//   - DELETE /v1/stream/{id} closes the session and returns a summary.
//
// Sessions are bounded in every dimension: a session-count cap, a
// per-lane reorder-buffer cap, a drained-results cap, and an idle TTL
// enforced by a janitor goroutine. Over-limit opens and chunks are
// shed with 429 + Retry-After rather than queued without bound.

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"sidq/internal/geo"
	"sidq/internal/obs"
	"sidq/internal/roadnet"
	"sidq/internal/store"
	"sidq/internal/stream"
	"sidq/internal/trajectory"
	"sidq/internal/uncertain"
)

// StreamConfig bounds the streaming ingestion subsystem. Zero fields
// take the defaults noted on each field.
type StreamConfig struct {
	MaxSessions    int           // open sessions before 429 (default 32)
	MaxLanePending int           // buffered events per lane before 429 (default 4096)
	MaxResults     int           // undrained cleaned points per session before 429 (default 65536)
	IdleTTL        time.Duration // idle sessions are evicted after this (default 5m)
	JanitorEvery   time.Duration // eviction sweep period (default 15s)
	Lateness       float64       // default watermark lateness, event-time seconds (default 5)
	Lanes          int           // default lanes per session (default 4)

	// Network, when set, enables online map matching: each source gets
	// an uncertain.OnlineMatcher over this graph and emitted points
	// carry the snapped position and edge id.
	Network  *roadnet.Graph
	SnapCell float64 // snapper grid cell in meters (default 100)
	MatchLag int     // matcher decision lag in points (default 5)
}

func (c StreamConfig) withDefaults() StreamConfig {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 32
	}
	if c.MaxLanePending <= 0 {
		c.MaxLanePending = 4096
	}
	if c.MaxResults <= 0 {
		c.MaxResults = 1 << 16
	}
	if c.IdleTTL <= 0 {
		c.IdleTTL = 5 * time.Minute
	}
	if c.JanitorEvery <= 0 {
		c.JanitorEvery = 15 * time.Second
	}
	if c.Lateness < 0 {
		c.Lateness = 0
	} else if c.Lateness == 0 {
		c.Lateness = 5
	}
	if c.Lanes <= 0 {
		c.Lanes = 4
	}
	if c.SnapCell <= 0 {
		c.SnapCell = 100
	}
	if c.MatchLag <= 0 {
		c.MatchLag = 5
	}
	return c
}

// Shedding and lifecycle errors, mapped to statuses by the handlers.
var (
	errSessionLimit = errors.New("session limit reached")
	errLaneFull     = errors.New("lane reorder buffer full")
	errResultsFull  = errors.New("result buffer full, drain /results first")
	errSessionGone  = errors.New("session closed")
)

// streamMetrics caches the registry pointers the hot ingest path bumps.
type streamMetrics struct {
	open        *obs.Gauge
	opened      *obs.Counter
	closed      *obs.Counter
	evicted     *obs.Counter
	rejected    *obs.Counter
	ingested    *obs.Counter
	emitted     *obs.Counter
	late        *obs.Counter
	outlier     *obs.Counter
	snapshots   *obs.Counter
	restored    *obs.Counter
	replayed    *obs.Counter
	dup         *obs.Counter
	compactions *obs.Counter
	histTrimmed *obs.Counter
}

// sessionRegistry owns every live streaming session plus the shared
// matcher substrate and the idle-TTL janitor.
type sessionRegistry struct {
	cfg     StreamConfig
	svc     *Service
	m       streamMetrics
	snapper *roadnet.Snapper // nil without a network
	now     func() time.Time // injectable for eviction tests

	// Durability (durability.go). wal is nil while memory-only AND
	// during recovery replay, which is what keeps the replay apply
	// path from re-appending the records it is reading.
	wal       *store.Log
	hist      *historyIndex
	snapEvery int
	retainMu  sync.Mutex     // serializes retention passes (ticker vs RunRetentionOnce)
	ret       retentionState // retention sample ring, guarded by retainMu (retention.go)

	mu       sync.Mutex
	sessions map[string]*streamSession
	seq      uint64

	janitorOnce sync.Once
	stopOnce    sync.Once
	stopCh      chan struct{}
}

func newSessionRegistry(s *Service) *sessionRegistry {
	cfg := s.cfg.Stream
	reg := &sessionRegistry{
		cfg:       cfg,
		svc:       s,
		now:       time.Now,
		sessions:  map[string]*streamSession{},
		stopCh:    make(chan struct{}),
		hist:      newHistoryIndex(),
		snapEvery: s.cfg.Durability.SnapshotEvery,
		m: streamMetrics{
			open:        s.metrics.Gauge(mStreamOpen),
			opened:      s.metrics.Counter(mStreamOpened),
			closed:      s.metrics.Counter(mStreamClosed),
			evicted:     s.metrics.Counter(mStreamEvicted),
			rejected:    s.metrics.Counter(mStreamRejected),
			ingested:    s.metrics.Counter(mStreamIngested),
			emitted:     s.metrics.Counter(mStreamEmitted),
			late:        s.metrics.Counter(mStreamLate),
			outlier:     s.metrics.Counter(mStreamOutlier),
			snapshots:   s.metrics.Counter(mStreamSnapshots),
			restored:    s.metrics.Counter(mStreamRestored),
			replayed:    s.metrics.Counter(mStreamReplayed),
			dup:         s.metrics.Counter(mStreamDup),
			compactions: s.metrics.Counter(mStoreCompactions),
			histTrimmed: s.metrics.Counter(mHistoryTrimmed),
		},
	}
	if cfg.Network != nil {
		reg.snapper = roadnet.NewSnapper(cfg.Network, cfg.SnapCell)
	}
	return reg
}

// trace emits a session lifecycle event when the service carries a
// trace sink.
func (reg *sessionRegistry) trace(ev obs.TraceEvent) {
	if sink := reg.svc.cfg.Trace; sink != nil {
		sink.Record(ev)
	}
}

// startJanitor spawns the eviction goroutine once, on first session
// open, so services that never stream pay nothing.
func (reg *sessionRegistry) startJanitor() {
	reg.janitorOnce.Do(func() {
		go func() {
			t := time.NewTicker(reg.cfg.JanitorEvery)
			defer t.Stop()
			for {
				select {
				case <-reg.stopCh:
					return
				case <-t.C:
					reg.sweep(reg.now())
				}
			}
		}()
	})
}

func (reg *sessionRegistry) stopJanitor() {
	reg.stopOnce.Do(func() { close(reg.stopCh) })
}

// EvictIdleStreams runs one janitor sweep as of now and returns how
// many sessions it reclaimed. The background janitor runs the same
// sweep on a timer; this entry point exists for operational tooling
// and deterministic tests.
func (s *Service) EvictIdleStreams(now time.Time) int { return s.streams.sweep(now) }

// sweep evicts sessions idle past the TTL and returns how many it
// reclaimed. It is the janitor's tick body, exposed for deterministic
// tests via the injectable clock.
func (reg *sessionRegistry) sweep(now time.Time) int {
	reg.mu.Lock()
	var expired []*streamSession
	for _, ss := range reg.sessions {
		ss.mu.Lock()
		idle := now.Sub(ss.lastActive)
		ss.mu.Unlock()
		if idle > reg.cfg.IdleTTL {
			expired = append(expired, ss)
		}
	}
	for _, ss := range expired {
		delete(reg.sessions, ss.id)
	}
	reg.mu.Unlock()
	for _, ss := range expired {
		pending := ss.shutdown(true)
		reg.m.open.Dec()
		reg.m.evicted.Inc()
		reg.trace(obs.TraceEvent{Name: ss.id, Kind: obs.KindSessionEvict, N: pending})
		reg.svc.logf("stream session %s: evicted after %s idle (%d events pending)", ss.id, reg.cfg.IdleTTL, pending)
	}
	return len(expired)
}

// open creates a session or fails with errSessionLimit.
func (reg *sessionRegistry) open(lateness, maxSpeed float64, lanes int) (*streamSession, error) {
	reg.mu.Lock()
	if len(reg.sessions) >= reg.cfg.MaxSessions {
		reg.mu.Unlock()
		reg.m.rejected.Inc()
		reg.trace(obs.TraceEvent{Name: "open", Kind: obs.KindSessionShed, Err: errSessionLimit.Error()})
		return nil, errSessionLimit
	}
	reg.seq++
	ss := &streamSession{
		id:         fmt.Sprintf("st-%06d", reg.seq),
		reg:        reg,
		lateness:   lateness,
		maxSpeed:   maxSpeed,
		srcOrder:   map[string]int{},
		lastActive: reg.now(),
	}
	for i := 0; i < lanes; i++ {
		ss.lanes = append(ss.lanes, &streamLane{sources: map[string]*sourceState{}})
	}
	reg.sessions[ss.id] = ss
	reg.mu.Unlock()
	// Persist-before-ack: the open record must be durable before the
	// client learns the id (its chunk records will reference it).
	if reg.wal != nil {
		seq, err := reg.persist(recSessionOpen, walOpen{
			Session: ss.id, Lateness: lateness, MaxSpeed: maxSpeed, Lanes: lanes,
		})
		if err != nil {
			reg.mu.Lock()
			delete(reg.sessions, ss.id)
			reg.mu.Unlock()
			return nil, err
		}
		ss.mu.Lock()
		ss.openSeq = seq
		ss.mu.Unlock()
	}
	reg.startJanitor()
	reg.m.open.Inc()
	reg.m.opened.Inc()
	reg.trace(obs.TraceEvent{Name: ss.id, Kind: obs.KindSessionOpen, N: lanes})
	return ss, nil
}

// get returns the live session with the given id.
func (reg *sessionRegistry) get(id string) (*streamSession, bool) {
	reg.mu.Lock()
	ss, ok := reg.sessions[id]
	reg.mu.Unlock()
	return ss, ok
}

// close removes and shuts down a session (client-initiated).
func (reg *sessionRegistry) close(id string) (*streamSession, bool) {
	reg.mu.Lock()
	ss, ok := reg.sessions[id]
	delete(reg.sessions, id)
	reg.mu.Unlock()
	if !ok {
		return nil, false
	}
	ss.shutdown(false)
	reg.m.open.Dec()
	reg.m.closed.Inc()
	ss.mu.Lock()
	emitted := ss.emitted
	ss.mu.Unlock()
	reg.trace(obs.TraceEvent{Name: ss.id, Kind: obs.KindSessionClose, N: emitted})
	return ss, true
}

// srcPoint is one ingested sample: the source id plus the sample.
type srcPoint struct {
	src string
	pt  trajectory.Point
}

// sourceState is the per-source incremental cleaning state. A source
// lives in exactly one lane (LaneFor of its id), so lane goroutines
// touch disjoint source states. The reorderer — and therefore the
// lateness watermark — is per source, not per lane: sources sharing a
// lane may sit at wildly different event times (one client replaying
// history while another streams live), and a shared watermark would
// let the fastest source drop every other source's rows as late.
type sourceState struct {
	re      *stream.Reorderer[trajectory.Point]
	hasLast bool
	last    trajectory.Point // last accepted point, the speed-gate anchor
	matcher *uncertain.OnlineMatcher
}

// streamLane is one keyed lane: the affinity/parallelism unit holding
// the states of the sources hashed to it.
type streamLane struct {
	sources map[string]*sourceState
}

// pending sums the lane's buffered (not yet released) events.
func (l *streamLane) pending() int {
	n := 0
	for _, st := range l.sources {
		n += st.re.Pending()
	}
	return n
}

// streamResult is one cleaned output point (an NDJSON line). Edge is
// set only when a road network is loaded and the point was matched.
type streamResult struct {
	Source string  `json:"source"`
	T      float64 `json:"t"`
	X      float64 `json:"x"`
	Y      float64 `json:"y"`
	Edge   *int    `json:"edge,omitempty"`
}

// streamSession is one client's stream state between requests.
type streamSession struct {
	id       string
	reg      *sessionRegistry
	lateness float64 // per-source watermark lateness, event-time seconds
	maxSpeed float64 // speed gate bound, m/s (0 disables)

	mu         sync.Mutex
	closed     bool
	lanes      []*streamLane
	srcOrder   map[string]int // source id -> first-appearance rank
	srcIDs     []string       // source ids in first-appearance order
	results    []streamResult // cleaned, undrained
	lastActive time.Time

	ingested, emitted, late, outliers int

	// Durability bookkeeping (durability.go).
	chunkIdx  uint64 // chunks applied; replay skips records at or below it
	clientSeq uint64 // highest client-supplied ?seq=, for retry dedup
	sinceSnap int    // chunks since the last snapshot record

	// Retention floors (retention.go): the lowest WAL seq this session
	// still needs for recovery is snapSeq (a snapshot supersedes all of
	// its earlier records), falling back to openSeq before the first
	// snapshot. 0 means unknown — the session pins the whole log.
	openSeq uint64 // seq of this session's recSessionOpen record
	snapSeq uint64 // seq of the latest recSnapshot record
}

// laneOut is one lane's contribution to a chunk or flush.
type laneOut struct {
	res            []streamResult
	late, outliers int
}

// sourceFor returns the lane's state for src, creating it on first
// sight. Caller must be the only goroutine touching this lane.
func (ss *streamSession) sourceFor(l *streamLane, src string) *sourceState {
	st := l.sources[src]
	if st == nil {
		st = &sourceState{re: stream.NewReorderer[trajectory.Point](ss.lateness)}
		if ss.reg.snapper != nil {
			st.matcher = uncertain.NewOnlineMatcher(
				ss.reg.cfg.Network, ss.reg.snapper, uncertain.MatchOptions{}, ss.reg.cfg.MatchLag)
		}
		l.sources[src] = st
	}
	return st
}

// cleanInto runs one released (in-order) point through the incremental
// cleaner, appending any emitted points to out. Caller must be the only
// goroutine touching this source's lane.
func (ss *streamSession) cleanInto(st *sourceState, src string, pt trajectory.Point, out *laneOut) {
	if st.hasLast && ss.maxSpeed > 0 {
		dt := pt.T - st.last.T
		if dt <= 0 || st.last.Pos.Dist(pt.Pos)/dt > ss.maxSpeed {
			out.outliers++
			return
		}
	}
	st.last, st.hasLast = pt, true
	if st.matcher != nil {
		for _, m := range st.matcher.Push(pt) {
			e := int(m.Snap.Edge)
			out.res = append(out.res, streamResult{
				Source: src, T: m.Point.T, X: m.Snap.Pos.X, Y: m.Snap.Pos.Y, Edge: &e,
			})
		}
		return
	}
	out.res = append(out.res, streamResult{Source: src, T: pt.T, X: pt.Pos.X, Y: pt.Pos.Y})
}

// ingestAck is the JSON response to one ingest chunk.
type ingestAck struct {
	Session        string `json:"session"`
	Ingested       int    `json:"ingested"`
	Released       int    `json:"released"`
	PendingReorder int    `json:"pending_reorder"`
	PendingResults int    `json:"pending_results"`
	Duplicate      bool   `json:"duplicate,omitempty"` // chunk already applied (?seq= retry)
}

// ingest applies one parsed chunk atomically: backpressure is checked
// up front, so a rejected chunk leaves the session untouched. With a
// durable log, the chunk record is persisted (and, under fsync=always,
// fsynced) before it is applied — the ack never claims more than the
// disk holds. clientSeq, when non-zero, must increase chunk over
// chunk; a replayed seq is acknowledged as a duplicate without being
// applied, which is what makes client retries after a crash or a lost
// response idempotent.
func (ss *streamSession) ingest(events []stream.Event[srcPoint], clientSeq uint64, now time.Time) (ingestAck, error) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.closed {
		return ingestAck{}, errSessionGone
	}
	ss.lastActive = now
	if clientSeq > 0 && clientSeq <= ss.clientSeq {
		ss.reg.m.dup.Inc()
		return ingestAck{
			Session:        ss.id,
			Duplicate:      true,
			PendingReorder: ss.pendingReorderLocked(),
			PendingResults: len(ss.results),
		}, nil
	}
	lanes := stream.FanOut(events, len(ss.lanes), func(e stream.Event[srcPoint]) string { return e.Value.src })
	for i, le := range lanes {
		if len(le) > 0 && ss.lanes[i].pending()+len(le) > ss.reg.cfg.MaxLanePending {
			return ingestAck{}, errLaneFull
		}
	}
	if len(ss.results)+len(events) > ss.reg.cfg.MaxResults {
		return ingestAck{}, errResultsFull
	}
	if ss.reg.wal != nil {
		if err := ss.persistChunkLocked(events, clientSeq); err != nil {
			return ingestAck{}, err
		}
	}
	ack := ss.applyLocked(events, lanes)
	ss.chunkIdx++
	if clientSeq > 0 {
		ss.clientSeq = clientSeq
	}
	ss.sinceSnap++
	if ss.reg.wal != nil && ss.sinceSnap >= ss.reg.snapEvery {
		ss.snapshotLocked()
	}
	return ack, nil
}

// applyLocked runs one accepted chunk through the lanes. It is the
// shared apply path: live ingest and WAL replay both fold chunks
// through it, which is what makes recovery deterministic. Caller holds
// ss.mu and has already fanned events out.
func (ss *streamSession) applyLocked(events []stream.Event[srcPoint], lanes [][]stream.Event[srcPoint]) ingestAck {
	for _, e := range events {
		if _, ok := ss.srcOrder[e.Value.src]; !ok {
			ss.srcOrder[e.Value.src] = len(ss.srcIDs)
			ss.srcIDs = append(ss.srcIDs, e.Value.src)
		}
	}
	// Lanes are disjoint (a source id always hashes to the same lane),
	// so they process in parallel; merging in lane-index order keeps
	// the result order deterministic.
	outs := stream.ProcessLanes(lanes, 0, func(i int, evs []stream.Event[srcPoint]) laneOut {
		l := ss.lanes[i]
		var lo laneOut
		for _, e := range evs {
			st := ss.sourceFor(l, e.Value.src)
			lateBefore := st.re.LateCount()
			for _, rel := range st.re.Push(stream.Event[trajectory.Point]{Time: e.Time, Value: e.Value.pt}) {
				ss.cleanInto(st, e.Value.src, rel.Value, &lo)
			}
			lo.late += st.re.LateCount() - lateBefore
		}
		return lo
	})
	released := 0
	for _, lo := range outs {
		ss.results = append(ss.results, lo.res...)
		released += len(lo.res)
		ss.late += lo.late
		ss.outliers += lo.outliers
	}
	ss.ingested += len(events)
	ss.emitted += released
	m := &ss.reg.m
	m.ingested.Add(uint64(len(events)))
	m.emitted.Add(uint64(released))
	m.late.Add(uint64(sumLate(outs)))
	m.outlier.Add(uint64(sumOutliers(outs)))
	return ingestAck{
		Session:        ss.id,
		Ingested:       len(events),
		Released:       released,
		PendingReorder: ss.pendingReorderLocked(),
		PendingResults: len(ss.results),
	}
}

func sumLate(outs []laneOut) (n int) {
	for _, lo := range outs {
		n += lo.late
	}
	return n
}

func sumOutliers(outs []laneOut) (n int) {
	for _, lo := range outs {
		n += lo.outliers
	}
	return n
}

// pendingReorderLocked sums the source reorder buffers plus any
// matcher lag. Caller holds ss.mu.
func (ss *streamSession) pendingReorderLocked() int {
	n := 0
	for _, l := range ss.lanes {
		n += l.pending()
		for _, st := range l.sources {
			if st.matcher != nil {
				n += st.matcher.Pending()
			}
		}
	}
	return n
}

// drain hands back (and forgets) the cleaned results accumulated so
// far, in emission order. With flush, the lane reorder buffers and the
// matchers' decision lag are flushed first — end of stream. The
// returned source ids are in first-appearance order, for grouped (CSV)
// rendering.
func (ss *streamSession) drain(flush bool, now time.Time) ([]streamResult, []string, error) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.closed {
		return nil, nil, errSessionGone
	}
	ss.lastActive = now
	// A drain changes state the client observes (results leave the
	// buffer; flush advances the matchers), so it is logged before it
	// runs: replay re-runs it and discards the output, and the rows
	// this response delivers are never delivered again after a crash.
	if ss.reg.wal != nil && (flush || len(ss.results) > 0) {
		if _, err := ss.reg.persist(recDrain, walDrain{Session: ss.id, Flush: flush}); err != nil {
			return nil, nil, err
		}
	}
	out, srcs := ss.drainLocked(flush)
	return out, srcs, nil
}

// drainLocked is the drain state transition, shared by the live path
// and WAL replay. Caller holds ss.mu.
func (ss *streamSession) drainLocked(flush bool) ([]streamResult, []string) {
	if flush {
		emittedBefore := len(ss.results)
		// Flush per source in first-appearance order — reorder buffer
		// first, then the matcher's decision lag — so the tail of the
		// output is deterministic regardless of lane hashing.
		for _, src := range ss.srcIDs {
			l := ss.lanes[stream.LaneFor(src, len(ss.lanes))]
			st := l.sources[src]
			if st == nil {
				continue
			}
			var lo laneOut
			for _, rel := range st.re.Flush() {
				ss.cleanInto(st, src, rel.Value, &lo)
			}
			if st.matcher != nil {
				for _, m := range st.matcher.Flush() {
					e := int(m.Snap.Edge)
					lo.res = append(lo.res, streamResult{
						Source: src, T: m.Point.T, X: m.Snap.Pos.X, Y: m.Snap.Pos.Y, Edge: &e,
					})
				}
			}
			ss.results = append(ss.results, lo.res...)
			ss.outliers += lo.outliers
			ss.reg.m.outlier.Add(uint64(lo.outliers))
		}
		released := len(ss.results) - emittedBefore
		ss.emitted += released
		ss.reg.m.emitted.Add(uint64(released))
	}
	out := ss.results
	ss.results = nil
	srcs := append([]string(nil), ss.srcIDs...)
	return out, srcs
}

// shutdown marks the session closed and returns how many events were
// still pending (reorder buffers, matcher lag, undrained results).
func (ss *streamSession) shutdown(evicted bool) int {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.closed {
		return 0
	}
	ss.closed = true
	if ss.reg.wal != nil {
		ss.persistCloseLocked(evicted)
	}
	return ss.pendingReorderLocked() + len(ss.results)
}

// --- HTTP handlers -------------------------------------------------

// handleStream dispatches the /v1/stream/ subtree.
func (s *Service) handleStream(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/stream/")
	switch {
	case rest == "open":
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		s.handleStreamOpen(w, r)
	case rest == "ingest":
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		s.handleStreamIngest(w, r)
	case strings.HasSuffix(rest, "/results"):
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		s.handleStreamResults(w, r, strings.TrimSuffix(rest, "/results"))
	case rest != "" && !strings.Contains(rest, "/"):
		if r.Method != http.MethodDelete {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		s.handleStreamClose(w, r, rest)
	default:
		http.NotFound(w, r)
	}
}

func (s *Service) handleStreamOpen(w http.ResponseWriter, r *http.Request) {
	lateness, err := queryFloat0(r, "lateness", s.cfg.Stream.Lateness)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	maxSpeed, err := queryFloat0(r, "maxspeed", 20)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	lanes, err := queryIntRange(r, "lanes", s.cfg.Stream.Lanes, 1, 64)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ss, err := s.streams.open(lateness, maxSpeed, lanes)
	if err != nil {
		if errors.Is(err, errDurability) {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		shed429(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(map[string]interface{}{
		"session":  ss.id,
		"lateness": lateness,
		"maxspeed": maxSpeed,
		"lanes":    lanes,
	})
}

func (s *Service) handleStreamIngest(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("session")
	if id == "" {
		http.Error(w, "missing query parameter session", http.StatusBadRequest)
		return
	}
	ss, ok := s.streams.get(id)
	if !ok {
		http.Error(w, "unknown session "+id, http.StatusNotFound)
		return
	}
	events, err := parsePointChunk(r.Body)
	if err != nil {
		bodyError(w, err)
		return
	}
	clientSeq, err := queryUint(r, "seq")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ack, err := ss.ingest(events, clientSeq, s.streams.now())
	if err != nil {
		s.streamError(w, ss.id, err)
		return
	}
	w.Header().Set("X-Sidq-Session", ss.id)
	writeJSON(w, ack)
}

func (s *Service) handleStreamResults(w http.ResponseWriter, r *http.Request, id string) {
	ss, ok := s.streams.get(id)
	if !ok {
		http.Error(w, "unknown session "+id, http.StatusNotFound)
		return
	}
	q := r.URL.Query()
	flush := q.Get("flush") == "1" || q.Get("flush") == "true"
	format := q.Get("format")
	if format == "" {
		format = "ndjson"
	}
	if format != "ndjson" && format != "csv" {
		http.Error(w, (&paramError{key: "format", value: format}).Error(), http.StatusBadRequest)
		return
	}
	results, srcs, err := ss.drain(flush, s.streams.now())
	if err != nil {
		s.streamError(w, ss.id, err)
		return
	}
	w.Header().Set("X-Sidq-Session", ss.id)
	w.Header().Set("X-Sidq-Drained", strconv.Itoa(len(results)))
	if format == "csv" {
		w.Header().Set("Content-Type", "text/csv")
		if err := trajectory.WriteCSV(w, resultTrajectories(results, srcs)); err != nil {
			s.writeError(r, err)
		}
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for _, res := range results {
		if err := enc.Encode(res); err != nil {
			s.writeError(r, err)
			return
		}
	}
}

func (s *Service) handleStreamClose(w http.ResponseWriter, r *http.Request, id string) {
	ss, ok := s.streams.close(id)
	if !ok {
		http.Error(w, "unknown session "+id, http.StatusNotFound)
		return
	}
	ss.mu.Lock()
	summary := map[string]interface{}{
		"session":  ss.id,
		"ingested": ss.ingested,
		"emitted":  ss.emitted,
		"late":     ss.late,
		"outliers": ss.outliers,
		"dropped":  len(ss.results) + ss.pendingReorderLocked(),
	}
	ss.mu.Unlock()
	writeJSON(w, summary)
}

// streamError maps session-layer errors onto statuses: shedding is a
// 429 the client should back off from; a closed/evicted session is a
// 404 (its id no longer names anything).
func (s *Service) streamError(w http.ResponseWriter, id string, err error) {
	switch {
	case errors.Is(err, errLaneFull), errors.Is(err, errResultsFull):
		s.streams.m.rejected.Inc()
		s.streams.trace(obs.TraceEvent{Name: id, Kind: obs.KindSessionShed, Err: err.Error()})
		shed429(w, err)
	case errors.Is(err, errSessionGone):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, errDurability):
		// The WAL could not persist the chunk, so it was not applied:
		// the ack must fail rather than claim durability. 503 tells the
		// client the data was NOT accepted.
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func shed429(w http.ResponseWriter, err error) {
	w.Header().Set("Retry-After", "1")
	http.Error(w, err.Error(), http.StatusTooManyRequests)
}

// resultTrajectories groups drained results into per-source
// trajectories in first-appearance order — the exact grouping
// trajectory.ReadCSV produces for the same rows, so a fully drained
// in-order session serializes byte-identically to the batch path.
func resultTrajectories(results []streamResult, srcs []string) []*trajectory.Trajectory {
	// Columns build incrementally per source — flat T/X/Y appends
	// instead of per-source []Point growth — and materialize in emitted
	// order (no sorting), exactly as the AoS grouping did.
	b := trajectory.NewColumnsBuilder()
	for _, res := range results {
		b.Add(res.Source, res.T, res.X, res.Y)
	}
	var out []*trajectory.Trajectory
	for _, src := range srcs {
		if tr := b.Trajectory(src); tr != nil {
			out = append(out, tr)
		}
	}
	return out
}

// parsePointChunk decodes a chunk of "id,t,x,y" CSV rows (header
// optional) into events. The whole chunk is parsed before anything is
// applied; any malformed row rejects the chunk.
func parsePointChunk(r io.Reader) ([]stream.Event[srcPoint], error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	var events []stream.Event[srcPoint]
	first := true
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("parse point csv: %w", err)
		}
		if first {
			first = false
			if rec[0] == "id" {
				continue
			}
		}
		if rec[0] == "" {
			return nil, fmt.Errorf("parse point csv: empty source id")
		}
		t, err := parseFinite(rec[1])
		if err != nil {
			return nil, fmt.Errorf("parse point csv: bad t %q: %w", rec[1], err)
		}
		x, err := parseFinite(rec[2])
		if err != nil {
			return nil, fmt.Errorf("parse point csv: bad x %q: %w", rec[2], err)
		}
		y, err := parseFinite(rec[3])
		if err != nil {
			return nil, fmt.Errorf("parse point csv: bad y %q: %w", rec[3], err)
		}
		events = append(events, stream.Event[srcPoint]{
			Time:  t,
			Value: srcPoint{src: rec[0], pt: trajectory.Point{T: t, Pos: geo.Pt(x, y)}},
		})
	}
	return events, nil
}

// parseFinite parses a float and rejects NaN/Inf — a NaN event time
// would corrupt the reorder buffer's sort invariant.
func parseFinite(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, errors.New("not finite")
	}
	return v, nil
}

// queryFloat0 is queryFloat admitting zero: lateness=0 is strict
// in-order mode and maxspeed=0 disables the speed gate.
func queryFloat0(r *http.Request, key string, def float64) (float64, error) {
	s := r.URL.Query().Get(key)
	if s == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return 0, &paramError{key: key, value: s}
	}
	return v, nil
}

// queryUint parses a non-negative integer query parameter (0 when
// absent).
func queryUint(r *http.Request, key string) (uint64, error) {
	s := r.URL.Query().Get(key)
	if s == "" {
		return 0, nil
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, &paramError{key: key, value: s}
	}
	return v, nil
}

// queryIntRange parses an integer query parameter clamped to [lo, hi].
func queryIntRange(r *http.Request, key string, def, lo, hi int) (int, error) {
	s := r.URL.Query().Get(key)
	if s == "" {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil || v < lo || v > hi {
		return 0, &paramError{key: key, value: s}
	}
	return v, nil
}
