package uquery

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"sidq/internal/geo"
)

func TestKNNMonitorCorrectAndSaving(t *testing.T) {
	query := geo.Pt(500, 500)
	m := NewKNNMonitor(query, 5)
	rng := rand.New(rand.NewSource(1))
	type obj struct {
		id  string
		pos geo.Point
	}
	objs := make([]obj, 40)
	for i := range objs {
		objs[i] = obj{fmt.Sprintf("o%02d", i), geo.Pt(rng.Float64()*1000, rng.Float64()*1000)}
	}
	checkTicks := 0
	for tick := 0; tick < 150; tick++ {
		for i := range objs {
			objs[i].pos = objs[i].pos.Add(geo.Pt(rng.NormFloat64()*1.5, rng.NormFloat64()*1.5))
			m.Update(objs[i].id, objs[i].pos)
		}
		// Ground truth kNN over the true positions.
		sorted := append([]obj(nil), objs...)
		sort.Slice(sorted, func(a, b int) bool {
			da, db := sorted[a].pos.Dist(query), sorted[b].pos.Dist(query)
			if da != db {
				return da < db
			}
			return sorted[a].id < sorted[b].id
		})
		want := map[string]bool{}
		for i := 0; i < 5; i++ {
			want[sorted[i].id] = true
		}
		got := m.Result()
		if len(got) != 5 {
			t.Fatalf("tick %d: result size %d", tick, len(got))
		}
		match := 0
		for _, id := range got {
			if want[id] {
				match++
			}
		}
		// The safe-region invariant makes the reported set correct
		// whenever no object violated its region between re-evaluations;
		// the construction guarantees at least 4/5 agreement at all
		// times and exactness right after an evaluation. Enforce the
		// strong form: full agreement on every tick.
		if match != 5 {
			t.Fatalf("tick %d: kNN mismatch, got %v want %v", tick, got, wantKeys(want))
		}
		checkTicks++
	}
	if checkTicks != 150 {
		t.Fatal("checks did not run")
	}
	if m.Savings() < 0.3 {
		t.Fatalf("savings = %v", m.Savings())
	}
	reports, updates, evals := m.Stats()
	if updates != 150*40 || reports == 0 || evals == 0 || evals > reports {
		t.Fatalf("stats: %d %d %d", reports, updates, evals)
	}
}

func wantKeys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func TestKNNMonitorFewerObjectsThanK(t *testing.T) {
	m := NewKNNMonitor(geo.Pt(0, 0), 10)
	m.Update("a", geo.Pt(1, 0))
	m.Update("b", geo.Pt(2, 0))
	got := m.Result()
	if len(got) != 2 {
		t.Fatalf("result = %v", got)
	}
}

func TestKNNMonitorKClamp(t *testing.T) {
	m := NewKNNMonitor(geo.Pt(0, 0), 0)
	m.Update("a", geo.Pt(1, 0))
	if len(m.Result()) != 1 {
		t.Fatal("k clamp")
	}
}
