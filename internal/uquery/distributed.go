package uquery

import (
	"sort"
	"sync"

	"sidq/internal/distrib"
	"sidq/internal/geo"
	"sidq/internal/index"
)

// DistStore is a partitioned point store for scale-out range queries:
// points are routed to per-partition grid indexes by a spatial
// partitioner, and queries fan out to the overlapping partitions on a
// worker pool. It reproduces the architecture (and the scaling shape)
// of distributed spatial stores on a single machine.
type DistStore struct {
	part   *distrib.GridPartitioner
	exec   *distrib.Executor
	grids  []*index.Grid
	mu     []sync.Mutex // per-partition; same-partition tasks serialize anyway
	closed bool
}

// NewDistStore creates a store over bounds with nx x ny partitions and
// the given worker count.
func NewDistStore(bounds geo.Rect, nx, ny, workers int) *DistStore {
	part := distrib.NewGridPartitioner(bounds, nx, ny)
	n := part.NumPartitions()
	s := &DistStore{
		part:  part,
		exec:  distrib.NewExecutor(workers, 256),
		grids: make([]*index.Grid, n),
		mu:    make([]sync.Mutex, n),
	}
	for i := range s.grids {
		cell := part.CellRect(i)
		size := cell.Width() / 10
		if size <= 0 {
			size = 1
		}
		s.grids[i] = index.NewGrid(cell, size)
	}
	return s
}

// Insert routes a point to its partition asynchronously.
func (s *DistStore) Insert(e index.PointEntry) error {
	p := s.part.Partition(e.Pos)
	return s.exec.Submit(p, func() {
		s.mu[p].Lock()
		s.grids[p].Insert(e)
		s.mu[p].Unlock()
	})
}

// InsertBatch inserts entries and waits for them to be indexed.
func (s *DistStore) InsertBatch(entries []index.PointEntry) error {
	var wg sync.WaitGroup
	for _, e := range entries {
		e := e
		p := s.part.Partition(e.Pos)
		wg.Add(1)
		if err := s.exec.Submit(p, func() {
			s.mu[p].Lock()
			s.grids[p].Insert(e)
			s.mu[p].Unlock()
			wg.Done()
		}); err != nil {
			wg.Done()
			return err
		}
	}
	wg.Wait()
	return nil
}

// Range fans the query out to every overlapping partition and merges
// the results (sorted by id for determinism).
func (s *DistStore) Range(rect geo.Rect) ([]index.PointEntry, error) {
	n := s.part.NumPartitions()
	results := make([][]index.PointEntry, n)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		if !s.part.CellRect(p).Intersects(rect) {
			continue
		}
		p := p
		wg.Add(1)
		if err := s.exec.Submit(p, func() {
			s.mu[p].Lock()
			results[p] = s.grids[p].Range(rect)
			s.mu[p].Unlock()
			wg.Done()
		}); err != nil {
			wg.Done()
			return nil, err
		}
	}
	wg.Wait()
	var out []index.PointEntry
	for _, r := range results {
		out = append(out, r...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// Imbalance exposes the executor's load imbalance (max/mean tasks).
func (s *DistStore) Imbalance() float64 { return s.exec.Imbalance() }

// Close stops the worker pool.
func (s *DistStore) Close() {
	if !s.closed {
		s.closed = true
		s.exec.Close()
	}
}
