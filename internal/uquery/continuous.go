package uquery

import (
	"math"

	"sidq/internal/geo"
	"sidq/internal/stream"
)

// SafeRegionMonitor maintains a continuous range query over moving
// objects with safe-region communication suppression: each object is
// assigned a circular safe region (centered at its last report, with
// radius equal to the distance from that report to the query
// boundary); the object transmits only when it leaves the region, at
// which point its membership cannot have changed in between. The
// monitor counts suppressed vs transmitted updates — the communication
// saving that motivates safe regions.
type SafeRegionMonitor struct {
	query   geo.Rect
	last    map[string]geo.Point
	radius  map[string]float64
	inside  map[string]bool
	reports int
	updates int
}

// NewSafeRegionMonitor returns a monitor for the given query rectangle.
func NewSafeRegionMonitor(query geo.Rect) *SafeRegionMonitor {
	return &SafeRegionMonitor{
		query:  query,
		last:   map[string]geo.Point{},
		radius: map[string]float64{},
		inside: map[string]bool{},
	}
}

// boundaryDist returns the distance from p to the query boundary.
func (m *SafeRegionMonitor) boundaryDist(p geo.Point) float64 {
	if m.query.Contains(p) {
		// Distance to the nearest edge from inside.
		return math.Min(
			math.Min(p.X-m.query.Min.X, m.query.Max.X-p.X),
			math.Min(p.Y-m.query.Min.Y, m.query.Max.Y-p.Y),
		)
	}
	return m.query.DistToPoint(p)
}

// Update processes an object's true position at a tick. It returns
// whether the object had to communicate. Object membership in the
// result set is exact whenever the object's true position respects its
// safe region (which the construction guarantees).
func (m *SafeRegionMonitor) Update(id string, pos geo.Point) (communicated bool) {
	m.updates++
	lastPos, known := m.last[id]
	if known && pos.Dist(lastPos) <= m.radius[id] {
		return false // inside the safe region: suppressed
	}
	// Report: recenter the safe region.
	m.reports++
	m.last[id] = pos
	m.radius[id] = m.boundaryDist(pos)
	m.inside[id] = m.query.Contains(pos)
	return true
}

// Result returns the ids currently reported inside the query.
func (m *SafeRegionMonitor) Result() []string {
	var out []string
	for id, in := range m.inside {
		if in {
			out = append(out, id)
		}
	}
	sortStringsInPlace(out)
	return out
}

// Savings returns the fraction of updates suppressed, and the raw
// counts.
func (m *SafeRegionMonitor) Savings() (frac float64, reports, updates int) {
	if m.updates == 0 {
		return 0, 0, 0
	}
	return 1 - float64(m.reports)/float64(m.updates), m.reports, m.updates
}

func sortStringsInPlace(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// PointEvent is a location update flowing through a stream query.
type PointEvent struct {
	ID  string
	Pos geo.Point
}

// StreamRangeCounter answers per-window range-count queries over an
// out-of-order stream of location updates: a bounded-lateness reorderer
// restores event time, tumbling windows partition it, and each closed
// window reports the number of distinct objects seen inside the query
// rectangle.
type StreamRangeCounter struct {
	query   geo.Rect
	reorder *stream.Reorderer[PointEvent]
	windows *stream.TumblingWindows[PointEvent]
	results []WindowCount
}

// WindowCount is one closed-window answer.
type WindowCount struct {
	Start, End float64
	Count      int // distinct objects inside the rect during the window
}

// NewStreamRangeCounter builds a counter with the given window width
// and allowed lateness (both seconds).
func NewStreamRangeCounter(query geo.Rect, windowWidth, lateness float64) *StreamRangeCounter {
	return &StreamRangeCounter{
		query:   query,
		reorder: stream.NewReorderer[PointEvent](lateness),
		windows: stream.NewTumblingWindows[PointEvent](windowWidth),
	}
}

// Push ingests one possibly out-of-order update and returns any window
// results it closed.
func (c *StreamRangeCounter) Push(t float64, ev PointEvent) []WindowCount {
	var closed []stream.Window[PointEvent]
	for _, e := range c.reorder.Push(stream.Event[PointEvent]{Time: t, Value: ev}) {
		closed = append(closed, c.windows.Push(e)...)
	}
	return c.collect(closed)
}

// Flush drains the reorderer and closes the final window.
func (c *StreamRangeCounter) Flush() []WindowCount {
	var closed []stream.Window[PointEvent]
	for _, e := range c.reorder.Flush() {
		closed = append(closed, c.windows.Push(e)...)
	}
	closed = append(closed, c.windows.Flush()...)
	return c.collect(closed)
}

// Late returns the number of events dropped as too late.
func (c *StreamRangeCounter) Late() int { return c.reorder.LateCount() }

func (c *StreamRangeCounter) collect(closed []stream.Window[PointEvent]) []WindowCount {
	var out []WindowCount
	for _, w := range closed {
		seen := map[string]bool{}
		for _, e := range w.Events {
			if c.query.Contains(e.Value.Pos) {
				seen[e.Value.ID] = true
			}
		}
		wc := WindowCount{Start: w.Start, End: w.End, Count: len(seen)}
		c.results = append(c.results, wc)
		out = append(out, wc)
	}
	return out
}

// Results returns all closed windows so far.
func (c *StreamRangeCounter) Results() []WindowCount {
	return append([]WindowCount(nil), c.results...)
}
