package uquery

import (
	"math"
	"sort"

	"sidq/internal/geo"
)

// KNNMonitor maintains a continuous k-nearest-neighbor query over
// moving objects with safe-region communication suppression: each
// object's safe region is a circle whose radius is half the gap
// between the k-th and (k+1)-th distances at the last full evaluation
// (objects in the result and the runner-up band share the slack).
// While every object stays inside its region, the result set cannot
// change, so no object needs to report — the kNN analogue of the
// safe-region range query.
type KNNMonitor struct {
	query geo.Point
	k     int

	last    map[string]geo.Point
	radius  map[string]float64
	result  []string
	reports int
	updates int
	evals   int
}

// NewKNNMonitor returns a monitor for the k nearest objects to query.
func NewKNNMonitor(query geo.Point, k int) *KNNMonitor {
	if k < 1 {
		k = 1
	}
	return &KNNMonitor{
		query:  query,
		k:      k,
		last:   map[string]geo.Point{},
		radius: map[string]float64{},
	}
}

// Update processes one object's true position at a tick; it returns
// whether the object communicated. Whenever any object leaves its safe
// region, the monitor re-evaluates the kNN over the reported positions
// and reassigns every region.
func (m *KNNMonitor) Update(id string, pos geo.Point) (communicated bool) {
	m.updates++
	lastPos, known := m.last[id]
	if known && pos.Dist(lastPos) <= m.radius[id] {
		return false
	}
	m.reports++
	m.last[id] = pos
	m.reevaluate()
	return true
}

// reevaluate recomputes the kNN over last-known positions and assigns
// safe radii from the boundary slack.
func (m *KNNMonitor) reevaluate() {
	m.evals++
	type od struct {
		id string
		d  float64
	}
	all := make([]od, 0, len(m.last))
	for id, p := range m.last {
		all = append(all, od{id, p.Dist(m.query)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].d != all[j].d {
			return all[i].d < all[j].d
		}
		return all[i].id < all[j].id
	})
	k := m.k
	if k > len(all) {
		k = len(all)
	}
	m.result = m.result[:0]
	for i := 0; i < k; i++ {
		m.result = append(m.result, all[i].id)
	}
	// Slack between the k-th and (k+1)-th distances is shared: if every
	// object moves less than slack/2, the order across the boundary
	// cannot flip.
	slack := math.Inf(1)
	if k < len(all) && k > 0 {
		slack = (all[k].d - all[k-1].d) / 2
	}
	if math.IsInf(slack, 1) {
		slack = math.MaxFloat64 / 4
	}
	if slack < 0 {
		slack = 0
	}
	for _, o := range all {
		m.radius[o.id] = slack
	}
}

// Result returns the current kNN ids ordered by distance at the last
// evaluation.
func (m *KNNMonitor) Result() []string {
	return append([]string(nil), m.result...)
}

// Stats returns the communication counters: reports received, total
// updates observed, and full re-evaluations performed.
func (m *KNNMonitor) Stats() (reports, updates, evals int) {
	return m.reports, m.updates, m.evals
}

// Savings returns the fraction of updates suppressed.
func (m *KNNMonitor) Savings() float64 {
	if m.updates == 0 {
		return 0
	}
	return 1 - float64(m.reports)/float64(m.updates)
}
