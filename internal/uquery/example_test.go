package uquery_test

import (
	"fmt"

	"sidq/internal/geo"
	"sidq/internal/uquery"
)

// ExampleProbRange asks which uncertain objects are inside a rectangle
// with at least 90% probability.
func ExampleProbRange() {
	objs := []uquery.UncertainObject{
		uquery.GaussianObject{ID: "inside", Mean: geo.Pt(50, 50), Sigma: 2},
		uquery.GaussianObject{ID: "boundary", Mean: geo.Pt(80, 50), Sigma: 15},
		uquery.GaussianObject{ID: "far", Mean: geo.Pt(500, 500), Sigma: 2},
	}
	rect := geo.RectFromCenter(geo.Pt(50, 50), 40, 40)
	results, stats := uquery.ProbRange(objs, rect, 0.9)
	for _, r := range results {
		fmt.Printf("%s P=%.2f\n", r.ID, r.Prob)
	}
	fmt.Printf("pruned %d of %d without integration\n", stats.Pruned, stats.Candidates)
	// Output:
	// inside P=1.00
	// pruned 2 of 3 without integration
}

// ExamplePrism checks whether a detour was physically possible between
// two fixes — the alibi-style query over sampling uncertainty.
func ExamplePrism() {
	pr := uquery.Prism{
		P1: geo.Pt(0, 0), P2: geo.Pt(100, 0),
		T1: 0, T2: 20, VMax: 10,
	}
	fmt.Println("near detour possible:", pr.PossibleAt(geo.Pt(50, 60), 10))
	fmt.Println("far detour possible: ", pr.PossibleAt(geo.Pt(50, 95), 10))
	// Output:
	// near detour possible: true
	// far detour possible:  false
}
