package uquery

import (
	"testing"

	"sidq/internal/geo"
	"sidq/internal/simulate"
	"sidq/internal/trajectory"
)

func TestPossiblyDefinitelyVerdicts(t *testing.T) {
	// Object moves along x at 10 m/s, sampled every 10 s.
	var pts []trajectory.Point
	for i := 0; i <= 10; i++ {
		pts = append(pts, trajectory.Point{T: float64(i) * 10, Pos: geo.Pt(float64(i)*100, 0)})
	}
	tr := trajectory.New("a", pts)

	// Definitely: a rect containing the sample at t=50 (x=500).
	rect := geo.RectFromCenter(geo.Pt(500, 0), 20, 20)
	if got := PossiblyDefinitely(tr, rect, 45, 55, 12); got != Definitely {
		t.Fatalf("witness sample: %v", got)
	}
	// Possibly: an off-path rect reachable with a detour (vmax slack).
	detour := geo.RectFromCenter(geo.Pt(550, 120), 20, 20)
	if got := PossiblyDefinitely(tr, detour, 50, 60, 40); got != Possibly {
		t.Fatalf("reachable detour: %v", got)
	}
	// No: the same detour is unreachable at the true speed bound.
	if got := PossiblyDefinitely(tr, detour, 50, 60, 10.5); got != No {
		t.Fatalf("unreachable detour: %v", got)
	}
	// No: outside the time window entirely.
	if got := PossiblyDefinitely(tr, rect, 200, 300, 12); got != No {
		t.Fatalf("window miss: %v", got)
	}
	// Degenerate inputs.
	if got := PossiblyDefinitely(&trajectory.Trajectory{}, rect, 0, 10, 10); got != No {
		t.Fatalf("empty: %v", got)
	}
	if got := PossiblyDefinitely(tr, rect, 55, 45, 10); got != No {
		t.Fatalf("inverted window: %v", got)
	}
}

func TestPossiblyIsSupersetOfDefinitely(t *testing.T) {
	// Against densely sampled truth: thin the trajectory, classify, and
	// check soundness — every thinned-definite is truth-definite, and
	// every truth-definite is at least possibly under the prism model.
	region := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1000, 1000)}
	rect := geo.RectFromCenter(geo.Pt(500, 500), 80, 80)
	for seed := int64(0); seed < 10; seed++ {
		truth := simulate.RandomWalk("w", region, 400, 3, 1, seed)
		sparse := truth.Thin(10)
		truthVerdict := PossiblyDefinitely(truth, rect, 50, 350, 4)
		sparseVerdict := PossiblyDefinitely(sparse, rect, 50, 350, 4)
		if sparseVerdict == Definitely && truthVerdict == No {
			t.Fatalf("seed %d: sparse definite but truth says no", seed)
		}
		// If the dense truth has a witness sample, the sparse view must
		// at least consider it possible (the prism covers true motion
		// whenever vmax is honest).
		if truthVerdict == Definitely && sparseVerdict == No {
			t.Fatalf("seed %d: prism model missed true presence", seed)
		}
	}
}

func TestClassifyRange(t *testing.T) {
	mk := func(id string, x0 float64) *trajectory.Trajectory {
		var pts []trajectory.Point
		for i := 0; i <= 10; i++ {
			pts = append(pts, trajectory.Point{T: float64(i) * 10, Pos: geo.Pt(x0+float64(i)*100, 0)})
		}
		return trajectory.New(id, pts)
	}
	trs := []*trajectory.Trajectory{
		mk("hit", 0),      // sample at x=500, t=50
		mk("near", 30),    // samples at 530/430; rect reachable between
		mk("far", 100000), // nowhere near
	}
	rect := geo.RectFromCenter(geo.Pt(500, 0), 25, 25)
	got := ClassifyRange(trs, rect, 45, 55, 12)
	if len(got.Definitely) != 1 || got.Definitely[0] != "hit" {
		t.Fatalf("definitely = %v", got.Definitely)
	}
	if len(got.Possibly) != 1 || got.Possibly[0] != "near" {
		t.Fatalf("possibly = %v", got.Possibly)
	}
}

func TestRangeVerdictString(t *testing.T) {
	if No.String() != "no" || Possibly.String() != "possibly" || Definitely.String() != "definitely" {
		t.Fatal("verdict strings")
	}
}
