package uquery

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"sidq/internal/geo"
	"sidq/internal/index"
)

func TestGaussianObjectProbInRect(t *testing.T) {
	g := GaussianObject{ID: "g", Mean: geo.Pt(0, 0), Sigma: 10}
	// Full plane ~ 1.
	if p := g.ProbInRect(geo.RectFromCenter(geo.Pt(0, 0), 1000, 1000)); math.Abs(p-1) > 1e-6 {
		t.Fatalf("full plane prob = %v", p)
	}
	// Half plane ~ 0.5.
	half := geo.Rect{Min: geo.Pt(0, -1000), Max: geo.Pt(1000, 1000)}
	if p := g.ProbInRect(half); math.Abs(p-0.5) > 1e-3 {
		t.Fatalf("half plane prob = %v", p)
	}
	// Far rect ~ 0.
	if p := g.ProbInRect(geo.RectFromCenter(geo.Pt(1000, 1000), 10, 10)); p > 1e-6 {
		t.Fatalf("far prob = %v", p)
	}
	// Zero sigma degenerates to point membership.
	z := GaussianObject{ID: "z", Mean: geo.Pt(5, 5), Sigma: 0}
	if z.ProbInRect(geo.RectFromCenter(geo.Pt(5, 5), 1, 1)) != 1 {
		t.Fatal("zero sigma inside")
	}
	if z.ProbInRect(geo.RectFromCenter(geo.Pt(50, 50), 1, 1)) != 0 {
		t.Fatal("zero sigma outside")
	}
	if g.ProbInRect(geo.EmptyRect()) != 0 {
		t.Fatal("empty rect prob")
	}
}

func TestGaussianExpectedDistMonotone(t *testing.T) {
	g := GaussianObject{Mean: geo.Pt(0, 0), Sigma: 5}
	if g.ExpectedDist(geo.Pt(10, 0)) >= g.ExpectedDist(geo.Pt(100, 0)) {
		t.Fatal("expected distance not monotone in true distance")
	}
	// At the mean, E[dist] ~ sigma * sqrt(2).
	if got := g.ExpectedDist(geo.Pt(0, 0)); math.Abs(got-5*math.Sqrt2) > 1e-9 {
		t.Fatalf("at-mean expected dist = %v", got)
	}
}

func TestDiscreteObject(t *testing.T) {
	d := NewDiscreteObject("d", []WeightedSample{
		{Pos: geo.Pt(0, 0), W: 3},
		{Pos: geo.Pt(10, 0), W: 1},
	})
	// Weights normalized.
	if p := d.ProbInRect(geo.RectFromCenter(geo.Pt(0, 0), 1, 1)); math.Abs(p-0.75) > 1e-9 {
		t.Fatalf("prob = %v", p)
	}
	if ed := d.ExpectedDist(geo.Pt(0, 0)); math.Abs(ed-2.5) > 1e-9 {
		t.Fatalf("expected dist = %v", ed)
	}
	b := d.Bounds()
	if !b.Contains(geo.Pt(0, 0)) || !b.Contains(geo.Pt(10, 0)) {
		t.Fatal("bounds")
	}
}

func makeFleet(n int, sigma float64, seed int64) ([]UncertainObject, []geo.Point) {
	rng := rand.New(rand.NewSource(seed))
	objs := make([]UncertainObject, n)
	truth := make([]geo.Point, n)
	for i := 0; i < n; i++ {
		truth[i] = geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
		mean := truth[i].Add(geo.Pt(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma))
		objs[i] = GaussianObject{ID: fmt.Sprintf("o%d", i), Mean: mean, Sigma: sigma}
	}
	return objs, truth
}

func TestProbRangePrunesAndAnswers(t *testing.T) {
	objs, truth := makeFleet(500, 5, 1)
	rect := geo.RectFromCenter(geo.Pt(500, 500), 150, 150)
	res, st := ProbRange(objs, rect, 0.5)
	if st.Pruned == 0 {
		t.Fatal("no pruning on a selective query")
	}
	if st.Pruned+st.Refined != st.Candidates {
		t.Fatalf("stats inconsistent: %+v", st)
	}
	// Evaluate against ground truth: high-probability answers should
	// mostly be truly inside.
	inTruth := map[string]bool{}
	for i, p := range truth {
		if rect.Contains(p) {
			inTruth[fmt.Sprintf("o%d", i)] = true
		}
	}
	correct := 0
	for _, r := range res {
		if inTruth[r.ID] {
			correct++
		}
	}
	if len(res) == 0 || float64(correct)/float64(len(res)) < 0.8 {
		t.Fatalf("precision vs truth = %d/%d", correct, len(res))
	}
	// Results sorted by probability.
	for i := 1; i < len(res); i++ {
		if res[i].Prob > res[i-1].Prob {
			t.Fatal("results not sorted")
		}
	}
}

func TestProbRangeThresholdMonotone(t *testing.T) {
	objs, _ := makeFleet(300, 8, 2)
	rect := geo.RectFromCenter(geo.Pt(400, 600), 120, 120)
	lo, _ := ProbRange(objs, rect, 0.2)
	hi, _ := ProbRange(objs, rect, 0.8)
	if len(hi) > len(lo) {
		t.Fatal("higher threshold returned more objects")
	}
}

func TestProbKNNMatchesBruteForce(t *testing.T) {
	objs, _ := makeFleet(300, 5, 3)
	q := geo.Pt(500, 500)
	res, st := ProbKNN(objs, q, 10)
	if len(res) != 10 {
		t.Fatalf("results = %d", len(res))
	}
	// Brute force expected distances.
	type ed struct {
		id string
		d  float64
	}
	var all []ed
	for _, o := range objs {
		all = append(all, ed{o.ObjectID(), o.ExpectedDist(q)})
	}
	for i := 0; i < 10; i++ {
		min := i
		for j := i + 1; j < len(all); j++ {
			if all[j].d < all[min].d {
				min = j
			}
		}
		all[i], all[min] = all[min], all[i]
		if math.Abs(res[i].ExpectedDist-all[i].d) > 1e-9 {
			t.Fatalf("rank %d: %v vs brute %v", i, res[i].ExpectedDist, all[i].d)
		}
	}
	if st.Pruned == 0 {
		t.Fatal("kNN should prune distant objects")
	}
	if got, _ := ProbKNN(objs, q, 0); got != nil {
		t.Fatal("k=0")
	}
}

func TestPrismFeasibilityAndMembership(t *testing.T) {
	pr := Prism{P1: geo.Pt(0, 0), P2: geo.Pt(100, 0), T1: 0, T2: 20, VMax: 10}
	if !pr.Feasible() {
		t.Fatal("feasible prism rejected")
	}
	// Midpoint at mid time is reachable.
	if !pr.PossibleAt(geo.Pt(50, 0), 10) {
		t.Fatal("midpoint should be possible")
	}
	// A detour 60 m off-path at mid time needs 2*sqrt(50^2+60^2) > 156 m
	// of travel but only 200 m budget: possible.
	if !pr.PossibleAt(geo.Pt(50, 60), 10) {
		t.Fatal("near detour should be possible")
	}
	// 90 m off-path needs 2*sqrt(50^2+90^2) ≈ 206 m > 200: impossible.
	if pr.PossibleAt(geo.Pt(50, 90), 10) {
		t.Fatal("far detour should be impossible")
	}
	// Outside the time interval.
	if pr.PossibleAt(geo.Pt(50, 0), 25) {
		t.Fatal("outside time window")
	}
	// Infeasible prism.
	bad := Prism{P1: geo.Pt(0, 0), P2: geo.Pt(1000, 0), T1: 0, T2: 10, VMax: 1}
	if bad.Feasible() || bad.PossibleAt(geo.Pt(500, 0), 5) {
		t.Fatal("infeasible prism accepted")
	}
}

func TestPrismIntersectsRect(t *testing.T) {
	pr := Prism{P1: geo.Pt(0, 0), P2: geo.Pt(100, 0), T1: 0, T2: 20, VMax: 10}
	// A rect straddling the path at mid time.
	if !pr.IntersectsRectAt(geo.RectFromCenter(geo.Pt(50, 0), 10, 10), 10) {
		t.Fatal("on-path rect rejected")
	}
	// A rect far off-path.
	if pr.IntersectsRectAt(geo.RectFromCenter(geo.Pt(50, 200), 10, 10), 10) {
		t.Fatal("far rect accepted")
	}
	// A rect reachable by one disk but not the other (alibi query shape).
	if pr.IntersectsRectAt(geo.RectFromCenter(geo.Pt(-60, 0), 5, 5), 12) {
		t.Fatal("one-sided rect accepted")
	}
	// Rect containing the whole lens.
	if !pr.IntersectsRectAt(geo.RectFromCenter(geo.Pt(50, 0), 500, 500), 10) {
		t.Fatal("containing rect rejected")
	}
}

func TestMarkovGridBetween(t *testing.T) {
	region := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(200, 100)}
	m := NewMarkovGrid(region, 5)
	p1, p2 := geo.Pt(20, 50), geo.Pt(180, 50)
	dist := m.Between(p1, 0, p2, 40, 4, 20)
	var sum float64
	for _, p := range dist {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("distribution mass = %v", sum)
	}
	// The mean should be near the midpoint.
	mean := m.MeanOf(dist)
	if mean.Dist(geo.Pt(100, 50)) > 15 {
		t.Fatalf("between mean = %v", mean)
	}
	// Asymmetric query time shifts the mean toward the nearer fix.
	early := m.MeanOf(m.Between(p1, 0, p2, 40, 4, 8))
	if early.X >= mean.X {
		t.Fatalf("early mean %v should be left of mid mean %v", early, mean)
	}
	// Range probability concentrates around the midpoint at mid time.
	pMid := m.RangeProb(dist, geo.RectFromCenter(geo.Pt(100, 50), 30, 30))
	pFar := m.RangeProb(dist, geo.RectFromCenter(geo.Pt(20, 90), 10, 10))
	if pMid <= pFar {
		t.Fatalf("mid prob %v <= far prob %v", pMid, pFar)
	}
	// Out-of-window time yields zero mass.
	zero := m.Between(p1, 0, p2, 40, 4, 50)
	for _, p := range zero {
		if p != 0 {
			t.Fatal("out-of-window mass")
		}
	}
}

func TestSafeRegionMonitorCorrectAndSaving(t *testing.T) {
	query := geo.Rect{Min: geo.Pt(400, 400), Max: geo.Pt(600, 600)}
	m := NewSafeRegionMonitor(query)
	rng := rand.New(rand.NewSource(4))
	// Objects random-walk; verify result set correctness at every tick
	// against ground truth for the objects' *reported* semantics:
	// whenever an object communicates, membership is exact.
	type obj struct {
		id  string
		pos geo.Point
	}
	objs := make([]obj, 40)
	for i := range objs {
		objs[i] = obj{fmt.Sprintf("o%d", i), geo.Pt(rng.Float64()*1000, rng.Float64()*1000)}
	}
	for tick := 0; tick < 200; tick++ {
		for i := range objs {
			objs[i].pos = objs[i].pos.Add(geo.Pt(rng.NormFloat64()*3, rng.NormFloat64()*3))
			m.Update(objs[i].id, objs[i].pos)
		}
		// Safe-region invariant: every object's true membership equals
		// its reported membership (the region never crosses the boundary).
		reported := map[string]bool{}
		for _, id := range m.Result() {
			reported[id] = true
		}
		for _, o := range objs {
			if query.Contains(o.pos) != reported[o.id] {
				t.Fatalf("tick %d: membership wrong for %s", tick, o.id)
			}
		}
	}
	frac, reports, updates := m.Savings()
	if updates != 8000 {
		t.Fatalf("updates = %d", updates)
	}
	if frac < 0.5 {
		t.Fatalf("savings = %v (reports %d)", frac, reports)
	}
}

func TestStreamRangeCounter(t *testing.T) {
	query := geo.RectFromCenter(geo.Pt(50, 50), 25, 25)
	c := NewStreamRangeCounter(query, 10, 5)
	// Two objects inside during window [0,10); one outside; a late
	// disordered event still lands correctly.
	c.Push(1, PointEvent{ID: "a", Pos: geo.Pt(50, 50)})
	c.Push(3, PointEvent{ID: "b", Pos: geo.Pt(60, 60)})
	c.Push(2, PointEvent{ID: "c", Pos: geo.Pt(500, 500)}) // outside
	c.Push(4, PointEvent{ID: "a", Pos: geo.Pt(51, 51)})   // duplicate id
	c.Push(12, PointEvent{ID: "a", Pos: geo.Pt(50, 50)})
	c.Push(11, PointEvent{ID: "b", Pos: geo.Pt(50, 50)}) // disordered but within lateness
	results := c.Flush()
	all := c.Results()
	if len(all) < 2 {
		t.Fatalf("windows = %d", len(all))
	}
	if all[0].Count != 2 {
		t.Fatalf("window0 count = %d (want a,b)", all[0].Count)
	}
	if all[1].Count != 2 {
		t.Fatalf("window1 count = %d", all[1].Count)
	}
	if c.Late() != 0 {
		t.Fatalf("late = %d", c.Late())
	}
	_ = results
}

func TestStreamRangeCounterDropsVeryLate(t *testing.T) {
	c := NewStreamRangeCounter(geo.RectFromCenter(geo.Pt(0, 0), 10, 10), 10, 2)
	c.Push(100, PointEvent{ID: "a", Pos: geo.Pt(0, 0)})
	c.Push(10, PointEvent{ID: "b", Pos: geo.Pt(0, 0)}) // far beyond lateness
	c.Flush()
	if c.Late() != 1 {
		t.Fatalf("late = %d", c.Late())
	}
}

func TestDistStoreMatchesSingleNode(t *testing.T) {
	bounds := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1000, 1000)}
	store := NewDistStore(bounds, 4, 4, 4)
	defer store.Close()
	rng := rand.New(rand.NewSource(5))
	entries := make([]index.PointEntry, 2000)
	single := index.NewGrid(bounds, 50)
	for i := range entries {
		entries[i] = index.PointEntry{
			ID:  fmt.Sprintf("p%04d", i),
			Pos: geo.Pt(rng.Float64()*1000, rng.Float64()*1000),
		}
		single.Insert(entries[i])
	}
	if err := store.InsertBatch(entries); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		rect := geo.RectFromCenter(
			geo.Pt(rng.Float64()*1000, rng.Float64()*1000),
			rng.Float64()*200, rng.Float64()*200,
		)
		got, err := store.Range(rect)
		if err != nil {
			t.Fatal(err)
		}
		want := single.Range(rect)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d want %d", trial, len(got), len(want))
		}
	}
}

func TestDistStoreClosedSubmit(t *testing.T) {
	store := NewDistStore(geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(10, 10)}, 2, 2, 2)
	store.Close()
	store.Close() // idempotent
	if err := store.Insert(index.PointEntry{ID: "x", Pos: geo.Pt(1, 1)}); err == nil {
		t.Fatal("insert after close should error")
	}
}
