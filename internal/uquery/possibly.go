package uquery

import (
	"sort"

	"sidq/internal/geo"
	"sidq/internal/trajectory"
)

// RangeVerdict is the possibly/definitely answer of an uncertain
// trajectory range query.
type RangeVerdict int

// Verdicts, ordered by strength.
const (
	// No: even under the speed bound the object cannot have been inside.
	No RangeVerdict = iota
	// Possibly: some speed-bounded motion between samples enters the
	// rect during the window, but no sample proves it.
	Possibly
	// Definitely: a recorded sample lies inside the rect within the
	// window.
	Definitely
)

// String implements fmt.Stringer.
func (v RangeVerdict) String() string {
	switch v {
	case Definitely:
		return "definitely"
	case Possibly:
		return "possibly"
	default:
		return "no"
	}
}

// PossiblyDefinitely classifies one trajectory against a
// spatio-temporal range query under a maximum-speed motion model: the
// classic possibly/definitely semantics for uncertain (discretely
// sampled) trajectories. Between consecutive samples the object's
// reachable set is a space-time prism; the query is Possibly satisfied
// when any prism slice intersects the rect during [t0, t1], and
// Definitely when an actual sample falls inside.
func PossiblyDefinitely(tr *trajectory.Trajectory, rect geo.Rect, t0, t1, vmax float64) RangeVerdict {
	if tr.Len() == 0 || t1 < t0 || rect.IsEmpty() {
		return No
	}
	// Definite: a witness sample.
	for _, p := range tr.Points {
		if p.T >= t0 && p.T <= t1 && rect.Contains(p.Pos) {
			return Definitely
		}
	}
	if vmax <= 0 {
		return No
	}
	// Possible: a prism slice between some sample pair enters the rect.
	for i := 1; i < tr.Len(); i++ {
		a, b := tr.Points[i-1], tr.Points[i]
		if b.T < t0 || a.T > t1 || b.T <= a.T {
			continue
		}
		pr := Prism{P1: a.Pos, P2: b.Pos, T1: a.T, T2: b.T, VMax: vmax}
		if !pr.Feasible() {
			continue
		}
		// Check a few representative times in the clipped overlap; the
		// prism is fattest mid-gap, so sampling the overlap interval at
		// sub-gap resolution is reliable for query-sized rects.
		lo, hi := a.T, b.T
		if t0 > lo {
			lo = t0
		}
		if t1 < hi {
			hi = t1
		}
		const steps = 8
		for s := 0; s <= steps; s++ {
			t := lo + (hi-lo)*float64(s)/steps
			if pr.IntersectsRectAt(rect, t) {
				return Possibly
			}
		}
	}
	return No
}

// RangeClassification groups trajectory ids by verdict.
type RangeClassification struct {
	Definitely []string
	Possibly   []string
}

// ClassifyRange runs PossiblyDefinitely over a set of trajectories and
// returns the ids grouped by verdict (each list sorted).
func ClassifyRange(trs []*trajectory.Trajectory, rect geo.Rect, t0, t1, vmax float64) RangeClassification {
	var out RangeClassification
	for _, tr := range trs {
		switch PossiblyDefinitely(tr, rect, t0, t1, vmax) {
		case Definitely:
			out.Definitely = append(out.Definitely, tr.ID)
		case Possibly:
			out.Possibly = append(out.Possibly, tr.ID)
		}
	}
	sort.Strings(out.Definitely)
	sort.Strings(out.Possibly)
	return out
}
