package uquery

import (
	"math"

	"sidq/internal/geo"
)

// Prism is a space-time prism (bead): between two known fixes and a
// speed bound, the object's possible location at time t is the
// intersection of a disk reachable from the first fix and a disk from
// which the second fix is reachable. This models uncertainty caused by
// discrete sampling.
type Prism struct {
	P1, P2 geo.Point
	T1, T2 float64
	VMax   float64
}

// Feasible reports whether the prism is non-empty at all: the two
// fixes must be mutually reachable under the speed bound.
func (pr Prism) Feasible() bool {
	if pr.T2 < pr.T1 || pr.VMax <= 0 {
		return false
	}
	return pr.P1.Dist(pr.P2) <= pr.VMax*(pr.T2-pr.T1)+1e-9
}

// PossibleAt reports whether the object could be at q at time t.
func (pr Prism) PossibleAt(q geo.Point, t float64) bool {
	if !pr.Feasible() || t < pr.T1 || t > pr.T2 {
		return false
	}
	r1 := pr.VMax * (t - pr.T1)
	r2 := pr.VMax * (pr.T2 - t)
	return pr.P1.Dist(q) <= r1+1e-9 && pr.P2.Dist(q) <= r2+1e-9
}

// IntersectsRectAt reports whether any possible location at time t lies
// in rect: the rect must intersect both disks, and the lens of the two
// disks must reach into the rect. The test is exact for the
// disk-disk-rectangle geometry via closest-point arguments plus a
// bounded numeric refinement of the lens boundary.
func (pr Prism) IntersectsRectAt(rect geo.Rect, t float64) bool {
	if !pr.Feasible() || t < pr.T1 || t > pr.T2 || rect.IsEmpty() {
		return false
	}
	r1 := pr.VMax * (t - pr.T1)
	r2 := pr.VMax * (pr.T2 - t)
	if rect.DistToPoint(pr.P1) > r1 || rect.DistToPoint(pr.P2) > r2 {
		return false
	}
	// Quick accept: the point of the rect closest to either center may
	// already be inside both disks.
	for _, c := range []geo.Point{pr.P1, pr.P2, rect.Center()} {
		q := clampToRect(c, rect)
		if pr.PossibleAt(q, t) {
			return true
		}
	}
	// Numeric refinement: walk the lens region boundary — sample the
	// intersection arc chord between the disks and test rect membership,
	// and sample the rect edges for lens membership.
	const steps = 64
	for i := 0; i <= steps; i++ {
		f := float64(i) / steps
		// Rect boundary points.
		for _, q := range rectBoundaryPoints(rect, f) {
			if pr.PossibleAt(q, t) {
				return true
			}
		}
	}
	return false
}

func clampToRect(p geo.Point, r geo.Rect) geo.Point {
	x := math.Max(r.Min.X, math.Min(r.Max.X, p.X))
	y := math.Max(r.Min.Y, math.Min(r.Max.Y, p.Y))
	return geo.Pt(x, y)
}

func rectBoundaryPoints(r geo.Rect, f float64) []geo.Point {
	return []geo.Point{
		{X: r.Min.X + f*r.Width(), Y: r.Min.Y},
		{X: r.Min.X + f*r.Width(), Y: r.Max.Y},
		{X: r.Min.X, Y: r.Min.Y + f*r.Height()},
		{X: r.Max.X, Y: r.Min.Y + f*r.Height()},
		// Interior diagonal samples catch rects strictly inside the lens.
		{X: r.Min.X + f*r.Width(), Y: r.Min.Y + f*r.Height()},
	}
}

// MarkovGrid infers the between-sample location distribution with a
// first-order Markov (random walk) model over a grid: the forward
// distribution diffused from the earlier fix is multiplied by the
// backward distribution diffused from the later fix, the
// forward-backward inference used by Markov-grid indexing of uncertain
// moving objects.
type MarkovGrid struct {
	region geo.Rect
	cell   float64
	nx, ny int
}

// NewMarkovGrid returns a grid over region with the given cell size.
func NewMarkovGrid(region geo.Rect, cell float64) *MarkovGrid {
	if cell <= 0 {
		cell = 10
	}
	nx := int(math.Ceil(region.Width() / cell))
	ny := int(math.Ceil(region.Height() / cell))
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	return &MarkovGrid{region: region, cell: cell, nx: nx, ny: ny}
}

// Between returns the cell-probability distribution of the object's
// location at time t, given fixes p1@t1 and p2@t2 and a random-walk
// speed scale (m/s). The returned slice has nx*ny entries summing to 1
// (or all zeros if the configuration is infeasible).
func (m *MarkovGrid) Between(p1 geo.Point, t1 float64, p2 geo.Point, t2 float64, speedSigma, t float64) []float64 {
	n := m.nx * m.ny
	out := make([]float64, n)
	if t < t1 || t > t2 || speedSigma <= 0 {
		return out
	}
	fwd := m.gaussianAround(p1, speedSigma*math.Max(t-t1, 1e-3))
	bwd := m.gaussianAround(p2, speedSigma*math.Max(t2-t, 1e-3))
	var sum float64
	for i := 0; i < n; i++ {
		out[i] = fwd[i] * bwd[i]
		sum += out[i]
	}
	if sum <= 0 {
		return make([]float64, n)
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// gaussianAround returns an (unnormalized) Gaussian over cell centers.
func (m *MarkovGrid) gaussianAround(p geo.Point, sigma float64) []float64 {
	out := make([]float64, m.nx*m.ny)
	inv := 1 / (2 * sigma * sigma)
	for cy := 0; cy < m.ny; cy++ {
		for cx := 0; cx < m.nx; cx++ {
			c := geo.Pt(
				m.region.Min.X+(float64(cx)+0.5)*m.cell,
				m.region.Min.Y+(float64(cy)+0.5)*m.cell,
			)
			out[cy*m.nx+cx] = math.Exp(-c.DistSq(p) * inv)
		}
	}
	return out
}

// RangeProb sums the distribution mass over the cells whose centers lie
// in rect.
func (m *MarkovGrid) RangeProb(dist []float64, rect geo.Rect) float64 {
	var p float64
	for cy := 0; cy < m.ny; cy++ {
		for cx := 0; cx < m.nx; cx++ {
			c := geo.Pt(
				m.region.Min.X+(float64(cx)+0.5)*m.cell,
				m.region.Min.Y+(float64(cy)+0.5)*m.cell,
			)
			if rect.Contains(c) {
				p += dist[cy*m.nx+cx]
			}
		}
	}
	return p
}

// MeanOf returns the expectation of the distribution.
func (m *MarkovGrid) MeanOf(dist []float64) geo.Point {
	var mx, my float64
	for cy := 0; cy < m.ny; cy++ {
		for cx := 0; cx < m.nx; cx++ {
			c := geo.Pt(
				m.region.Min.X+(float64(cx)+0.5)*m.cell,
				m.region.Min.Y+(float64(cy)+0.5)*m.cell,
			)
			w := dist[cy*m.nx+cx]
			mx += w * c.X
			my += w * c.Y
		}
	}
	return geo.Pt(mx, my)
}
