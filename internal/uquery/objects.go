// Package uquery implements the paper's §2.3.1: query processing over
// low-quality SID. It covers the three obstacle areas the tutorial
// identifies:
//
//   - data uncertainty: probabilistic range and k-nearest-neighbor
//     queries over Gaussian and discrete-sample location models, with
//     bound-based pruning; between-sample inference for uncertain
//     trajectories via space-time prisms (beads) and first-order
//     Markov grids;
//   - data dynamics: safe-region continuous queries that suppress
//     object communication, and watermark-based stream range queries
//     over out-of-order updates;
//   - data decentralization (scale-out): a partitioned distributed
//     range-query store built on the distrib executor.
package uquery

import (
	"math"
	"sort"

	"sidq/internal/geo"
	"sidq/internal/stats"
)

// UncertainObject is a location with quantified uncertainty.
type UncertainObject interface {
	// ObjectID returns the object identity.
	ObjectID() string
	// ProbInRect returns the probability the true location is in rect.
	ProbInRect(rect geo.Rect) float64
	// ExpectedDist returns the expected distance to q.
	ExpectedDist(q geo.Point) float64
	// Bounds returns a rectangle containing (effectively) all
	// probability mass, used for pruning.
	Bounds() geo.Rect
}

// GaussianObject models a location as an isotropic bivariate normal —
// the closed-form continuous pdf case of the uncertain-query
// literature.
type GaussianObject struct {
	ID    string
	Mean  geo.Point
	Sigma float64
}

// ObjectID implements UncertainObject.
func (g GaussianObject) ObjectID() string { return g.ID }

// ProbInRect integrates the axis-separable Gaussian over rect.
func (g GaussianObject) ProbInRect(rect geo.Rect) float64 {
	if rect.IsEmpty() {
		return 0
	}
	if g.Sigma <= 0 {
		if rect.Contains(g.Mean) {
			return 1
		}
		return 0
	}
	px := stats.NormalCDF(rect.Max.X, g.Mean.X, g.Sigma) - stats.NormalCDF(rect.Min.X, g.Mean.X, g.Sigma)
	py := stats.NormalCDF(rect.Max.Y, g.Mean.Y, g.Sigma) - stats.NormalCDF(rect.Min.Y, g.Mean.Y, g.Sigma)
	return px * py
}

// ExpectedDist returns E[|X - q|] for the offset Rayleigh-like
// distribution, using the exact second moment as an accurate proxy:
// sqrt(d^2 + 2 sigma^2) (within ~8% of the true mean and
// order-preserving, which is what ranking needs).
func (g GaussianObject) ExpectedDist(q geo.Point) float64 {
	d := g.Mean.Dist(q)
	return math.Sqrt(d*d + 2*g.Sigma*g.Sigma)
}

// Bounds returns the 4-sigma box around the mean.
func (g GaussianObject) Bounds() geo.Rect {
	r := 4 * g.Sigma
	return geo.RectFromCenter(g.Mean, r, r)
}

// WeightedSample is one alternative of a discrete uncertain location.
type WeightedSample struct {
	Pos geo.Point
	W   float64
}

// DiscreteObject models a location as weighted samples — the discrete
// pdf case (e.g. particle clouds, candidate snap points).
type DiscreteObject struct {
	ID      string
	Samples []WeightedSample
}

// NewDiscreteObject normalizes the sample weights to sum to 1.
func NewDiscreteObject(id string, samples []WeightedSample) DiscreteObject {
	var sum float64
	for _, s := range samples {
		sum += s.W
	}
	out := DiscreteObject{ID: id, Samples: append([]WeightedSample(nil), samples...)}
	if sum > 0 {
		for i := range out.Samples {
			out.Samples[i].W /= sum
		}
	}
	return out
}

// ObjectID implements UncertainObject.
func (d DiscreteObject) ObjectID() string { return d.ID }

// ProbInRect sums the weights of samples inside rect.
func (d DiscreteObject) ProbInRect(rect geo.Rect) float64 {
	var p float64
	for _, s := range d.Samples {
		if rect.Contains(s.Pos) {
			p += s.W
		}
	}
	return p
}

// ExpectedDist returns the weighted mean distance to q.
func (d DiscreteObject) ExpectedDist(q geo.Point) float64 {
	var e float64
	for _, s := range d.Samples {
		e += s.W * s.Pos.Dist(q)
	}
	return e
}

// Bounds returns the bounding rectangle of the samples.
func (d DiscreteObject) Bounds() geo.Rect {
	r := geo.EmptyRect()
	for _, s := range d.Samples {
		r = r.ExtendPoint(s.Pos)
	}
	return r
}

// RangeResult is a probabilistic range query answer.
type RangeResult struct {
	ID   string
	Prob float64
}

// QueryStats reports the pruning effectiveness of a query execution.
type QueryStats struct {
	Candidates int // objects considered
	Pruned     int // dismissed by bounds without probability evaluation
	Refined    int // full probability evaluations
}

// ProbRange returns the objects whose probability of lying in rect is
// at least threshold, with bound-based pruning: objects whose
// conservative bounds cannot reach the threshold are dismissed without
// integrating the pdf.
func ProbRange(objs []UncertainObject, rect geo.Rect, threshold float64) ([]RangeResult, QueryStats) {
	var out []RangeResult
	st := QueryStats{Candidates: len(objs)}
	for _, o := range objs {
		b := o.Bounds()
		if !b.Intersects(rect) {
			// Upper bound on probability is ~0 (mass outside rect).
			st.Pruned++
			continue
		}
		if rect.ContainsRect(b) {
			// Lower bound ~1: accept without integration when the
			// threshold allows.
			if threshold <= 1 {
				out = append(out, RangeResult{ID: o.ObjectID(), Prob: 1})
				st.Pruned++
				continue
			}
		}
		st.Refined++
		if p := o.ProbInRect(rect); p >= threshold {
			out = append(out, RangeResult{ID: o.ObjectID(), Prob: p})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prob != out[j].Prob {
			return out[i].Prob > out[j].Prob
		}
		return out[i].ID < out[j].ID
	})
	return out, st
}

// KNNResult is a probabilistic kNN answer entry.
type KNNResult struct {
	ID           string
	ExpectedDist float64
}

// ProbKNN returns the k objects with smallest expected distance to q,
// pruning objects whose minimum possible distance (to their bound box)
// exceeds the current k-th best expected distance.
func ProbKNN(objs []UncertainObject, q geo.Point, k int) ([]KNNResult, QueryStats) {
	st := QueryStats{Candidates: len(objs)}
	if k <= 0 {
		return nil, st
	}
	// Process in order of bound-box min distance so pruning engages early.
	order := make([]int, len(objs))
	minDist := make([]float64, len(objs))
	for i, o := range objs {
		order[i] = i
		minDist[i] = o.Bounds().DistToPoint(q)
	}
	sort.Slice(order, func(a, b int) bool { return minDist[order[a]] < minDist[order[b]] })
	var best []KNNResult
	worst := math.Inf(1)
	for _, i := range order {
		if len(best) == k && minDist[i] > worst {
			st.Pruned++
			continue
		}
		st.Refined++
		ed := objs[i].ExpectedDist(q)
		if len(best) < k {
			best = append(best, KNNResult{ID: objs[i].ObjectID(), ExpectedDist: ed})
			sort.Slice(best, func(a, b int) bool { return best[a].ExpectedDist < best[b].ExpectedDist })
			worst = best[len(best)-1].ExpectedDist
		} else if ed < worst {
			best[len(best)-1] = KNNResult{ID: objs[i].ObjectID(), ExpectedDist: ed}
			sort.Slice(best, func(a, b int) bool { return best[a].ExpectedDist < best[b].ExpectedDist })
			worst = best[len(best)-1].ExpectedDist
		}
	}
	return best, st
}
