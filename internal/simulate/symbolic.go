package simulate

import (
	"fmt"
	"math/rand"

	"sidq/internal/geo"
)

// Reader is a proximity sensor (RFID antenna, BLE gate, infrared cell)
// with a circular detection zone.
type Reader struct {
	ID    string
	Pos   geo.Point
	Range float64
}

// Detection is one raw symbolic observation: reader r saw object o at
// epoch time t.
type Detection struct {
	ReaderID string
	ObjectID string
	T        float64
}

// SymbolicOptions configures the RFID-style tracking simulator.
type SymbolicOptions struct {
	NumReaders int     // readers in the corridor (default 10)
	Spacing    float64 // meters between readers (default 20)
	Range      float64 // detection radius (default 8)
	Epoch      float64 // detection epoch seconds (default 1)
	Speed      float64 // object speed m/s (default 2)
	FalseNeg   float64 // probability an in-range read is missed
	FalsePos   float64 // probability an adjacent reader cross-reads
	Seed       int64
}

// SymbolicWorld is a generated corridor deployment plus one object's
// pass through it: the raw (faulty) detections and the ground-truth
// reader sequence.
type SymbolicWorld struct {
	Readers    []Reader
	Detections []Detection        // observed, with FN/FP faults
	Truth      map[float64]string // epoch time -> true reader id ("" when in no zone)
	Epochs     []float64          // ordered epoch times
}

// Symbolic simulates one object walking a corridor of readers, applying
// false-negative and false-positive faults to the raw detections. This
// mirrors the RFID cleansing setting of the surveyed SIGMOD'10/'16
// work: FNs drop in-zone reads, FPs add cross-reads from neighbors.
func Symbolic(objectID string, opt SymbolicOptions) SymbolicWorld {
	if opt.NumReaders <= 0 {
		opt.NumReaders = 10
	}
	if opt.Spacing <= 0 {
		opt.Spacing = 20
	}
	if opt.Range <= 0 {
		opt.Range = 8
	}
	if opt.Epoch <= 0 {
		opt.Epoch = 1
	}
	if opt.Speed <= 0 {
		opt.Speed = 2
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	w := SymbolicWorld{Truth: map[float64]string{}}
	for i := 0; i < opt.NumReaders; i++ {
		w.Readers = append(w.Readers, Reader{
			ID:    fmt.Sprintf("r%d", i),
			Pos:   geo.Pt(float64(i)*opt.Spacing, 0),
			Range: opt.Range,
		})
	}
	corridorLen := float64(opt.NumReaders-1) * opt.Spacing
	for t := 0.0; t*opt.Speed <= corridorLen; t += opt.Epoch {
		pos := geo.Pt(t*opt.Speed, 0)
		w.Epochs = append(w.Epochs, t)
		w.Truth[t] = ""
		for _, r := range w.Readers {
			inZone := r.Pos.Dist(pos) <= r.Range
			if inZone {
				w.Truth[t] = r.ID
				if rng.Float64() >= opt.FalseNeg {
					w.Detections = append(w.Detections, Detection{ReaderID: r.ID, ObjectID: objectID, T: t})
				}
			} else if r.Pos.Dist(pos) <= 2.5*r.Range && rng.Float64() < opt.FalsePos {
				// Cross-read from a nearby (but wrong) reader.
				w.Detections = append(w.Detections, Detection{ReaderID: r.ID, ObjectID: objectID, T: t})
			}
		}
	}
	return w
}
