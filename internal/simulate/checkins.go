package simulate

import (
	"fmt"
	"math/rand"
	"sort"

	"sidq/internal/geo"
)

// POI is a point of interest with a category.
type POI struct {
	ID       string
	Pos      geo.Point
	Category string
}

// CheckIn is one user visit event. Candidates holds the POI ids the
// positioning system considered possible for the visit with their
// probabilities (uncertain check-ins); the first candidate is the
// system's top guess, TruePOI is the actual venue.
type CheckIn struct {
	UserID     string
	T          float64
	TruePOI    string
	Candidates []POICandidate
}

// POICandidate is an uncertain check-in alternative.
type POICandidate struct {
	POI  string
	Prob float64
}

// CheckInOptions configures the check-in stream generator.
type CheckInOptions struct {
	Bounds      geo.Rect
	NumPOIs     int     // default 30
	NumUsers    int     // default 10
	VisitsEach  int     // check-ins per user (default 50)
	Uncertainty float64 // probability mass leaked to nearby wrong POIs
	Seed        int64
}

// Categories used by the generator; user preference is a distribution
// over these.
var Categories = []string{"food", "shop", "work", "home", "leisure"}

// CheckIns generates POIs and per-user check-in sequences with a
// Markovian category habit (e.g. home -> work -> food), positional
// uncertainty over nearby POIs, and deterministic seeding. It returns
// the POI set and the event stream ordered by time.
func CheckIns(opt CheckInOptions) ([]POI, []CheckIn) {
	if opt.NumPOIs <= 0 {
		opt.NumPOIs = 30
	}
	if opt.NumUsers <= 0 {
		opt.NumUsers = 10
	}
	if opt.VisitsEach <= 0 {
		opt.VisitsEach = 50
	}
	if opt.Bounds.IsEmpty() || opt.Bounds.Area() == 0 {
		opt.Bounds = geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(2000, 2000)}
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	pois := make([]POI, opt.NumPOIs)
	byCat := map[string][]int{}
	for i := range pois {
		cat := Categories[rng.Intn(len(Categories))]
		pois[i] = POI{
			ID:       fmt.Sprintf("poi%d", i),
			Category: cat,
			Pos: geo.Pt(
				opt.Bounds.Min.X+rng.Float64()*opt.Bounds.Width(),
				opt.Bounds.Min.Y+rng.Float64()*opt.Bounds.Height(),
			),
		}
		byCat[cat] = append(byCat[cat], i)
	}
	// Category transition matrix: strong self- and cyclic structure so
	// next-POI prediction has learnable regularity.
	next := map[string][]string{
		"home":    {"work", "work", "food", "shop"},
		"work":    {"food", "food", "work", "leisure"},
		"food":    {"work", "home", "leisure", "shop"},
		"shop":    {"home", "food", "leisure", "shop"},
		"leisure": {"home", "home", "food", "shop"},
	}
	var events []CheckIn
	for u := 0; u < opt.NumUsers; u++ {
		cat := Categories[rng.Intn(len(Categories))]
		t := rng.Float64() * 3600
		for v := 0; v < opt.VisitsEach; v++ {
			choices := byCat[cat]
			if len(choices) == 0 {
				cat = Categories[rng.Intn(len(Categories))]
				continue
			}
			trueIdx := choices[rng.Intn(len(choices))]
			ci := CheckIn{
				UserID:  fmt.Sprintf("u%d", u),
				T:       t,
				TruePOI: pois[trueIdx].ID,
			}
			ci.Candidates = uncertainCandidates(pois, trueIdx, opt.Uncertainty, rng)
			events = append(events, ci)
			t += 1800 + rng.Float64()*5400
			opts := next[cat]
			cat = opts[rng.Intn(len(opts))]
		}
	}
	// Order by time for stream consumers.
	sortCheckIns(events)
	return pois, events
}

// uncertainCandidates distributes probability between the true POI and
// its two nearest neighbors according to the uncertainty level.
func uncertainCandidates(pois []POI, trueIdx int, uncertainty float64, rng *rand.Rand) []POICandidate {
	if uncertainty <= 0 {
		return []POICandidate{{POI: pois[trueIdx].ID, Prob: 1}}
	}
	// Find the two nearest other POIs.
	type cand struct {
		idx int
		d   float64
	}
	var nearest []cand
	for i := range pois {
		if i == trueIdx {
			continue
		}
		nearest = append(nearest, cand{i, pois[i].Pos.DistSq(pois[trueIdx].Pos)})
	}
	for i := 0; i < 2 && i < len(nearest); i++ {
		min := i
		for j := i + 1; j < len(nearest); j++ {
			if nearest[j].d < nearest[min].d {
				min = j
			}
		}
		nearest[i], nearest[min] = nearest[min], nearest[i]
	}
	leak := uncertainty * (0.5 + 0.5*rng.Float64())
	out := []POICandidate{{POI: pois[trueIdx].ID, Prob: 1 - leak}}
	share := leak
	for i := 0; i < 2 && i < len(nearest); i++ {
		p := share / 2
		if i == 1 {
			p = share - share/2
		}
		out = append(out, POICandidate{POI: pois[nearest[i].idx].ID, Prob: p})
	}
	return out
}

func sortCheckIns(events []CheckIn) {
	sort.SliceStable(events, func(i, j int) bool { return events[i].T < events[j].T })
}
