// Package simulate generates the synthetic spatial IoT workloads used
// throughout sidq in place of proprietary real-world traces: vehicle
// trips over road networks, GPS corruption operators, spatiotemporal
// sensor fields, RSSI radio environments, symbolic (RFID-style)
// tracking, and POI check-in streams.
//
// Every generator is driven by an explicit seed and is fully
// deterministic, so experiments and tests are reproducible.
package simulate

import (
	"fmt"
	"math"
	"math/rand"

	"sidq/internal/geo"
	"sidq/internal/roadnet"
	"sidq/internal/trajectory"
)

// TripOptions configures the road-network trip generator.
type TripOptions struct {
	NumObjects     int     // number of vehicles (default 10)
	MinHops        int     // minimum shortest-path node count per trip (default 5)
	SampleInterval float64 // seconds between GPS samples (default 1)
	Speed          float64 // cruise speed in m/s (default edge SpeedCap)
	Seed           int64
}

// Trips generates ground-truth vehicle trajectories on g: each vehicle
// drives the shortest path between random origin/destination nodes at
// constant speed, sampled every SampleInterval seconds. Trips that fail
// to route (disconnected picks) are retried with new endpoints.
func Trips(g *roadnet.Graph, opt TripOptions) []*trajectory.Trajectory {
	if opt.NumObjects <= 0 {
		opt.NumObjects = 10
	}
	if opt.MinHops <= 0 {
		opt.MinHops = 5
	}
	if opt.SampleInterval <= 0 {
		opt.SampleInterval = 1
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	out := make([]*trajectory.Trajectory, 0, opt.NumObjects)
	for i := 0; i < opt.NumObjects; i++ {
		var path roadnet.Path
		for attempt := 0; ; attempt++ {
			a := roadnet.NodeID(rng.Intn(g.NumNodes()))
			b := roadnet.NodeID(rng.Intn(g.NumNodes()))
			p, err := g.ShortestPath(a, b)
			if err == nil && len(p.Nodes) >= opt.MinHops {
				path = p
				break
			}
			if attempt > 200 {
				// Give up on the hop constraint; accept any routable pair.
				if err == nil {
					path = p
					break
				}
			}
		}
		speed := opt.Speed
		if speed <= 0 {
			if len(path.Edges) > 0 {
				speed = g.Edge(path.Edges[0]).SpeedCap
			} else {
				speed = 13.9
			}
		}
		tr := driveTrajectory(g, path, speed, opt.SampleInterval, fmt.Sprintf("veh-%d", i))
		out = append(out, tr)
	}
	return out
}

// driveTrajectory samples constant-speed motion along a path geometry.
func driveTrajectory(g *roadnet.Graph, path roadnet.Path, speed, dt float64, id string) *trajectory.Trajectory {
	pl := g.Geometry(path)
	total := pl.Length()
	var pts []trajectory.Point
	for d, t := 0.0, 0.0; d < total; d, t = d+speed*dt, t+dt {
		pts = append(pts, trajectory.Point{T: t, Pos: pl.PointAt(d)})
	}
	pts = append(pts, trajectory.Point{T: total / speed, Pos: pl.PointAt(total)})
	return trajectory.New(id, pts)
}

// Trip is a generated trip together with its route, for experiments
// that need the ground-truth path (e.g. route recovery evaluation).
type Trip struct {
	Truth *trajectory.Trajectory
	Path  roadnet.Path
}

// TripsWithRoutes is like Trips but also returns the ground-truth path
// of every trip.
func TripsWithRoutes(g *roadnet.Graph, opt TripOptions) []Trip {
	if opt.NumObjects <= 0 {
		opt.NumObjects = 10
	}
	if opt.MinHops <= 0 {
		opt.MinHops = 5
	}
	if opt.SampleInterval <= 0 {
		opt.SampleInterval = 1
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	out := make([]Trip, 0, opt.NumObjects)
	for i := 0; i < opt.NumObjects; i++ {
		var path roadnet.Path
		for attempt := 0; ; attempt++ {
			a := roadnet.NodeID(rng.Intn(g.NumNodes()))
			b := roadnet.NodeID(rng.Intn(g.NumNodes()))
			p, err := g.ShortestPath(a, b)
			if err == nil && (len(p.Nodes) >= opt.MinHops || attempt > 200) {
				path = p
				break
			}
		}
		speed := opt.Speed
		if speed <= 0 {
			if len(path.Edges) > 0 {
				speed = g.Edge(path.Edges[0]).SpeedCap
			} else {
				speed = 13.9
			}
		}
		tr := driveTrajectory(g, path, speed, opt.SampleInterval, fmt.Sprintf("veh-%d", i))
		out = append(out, Trip{Truth: tr, Path: path})
	}
	return out
}

// RandomWalk generates a free-space random-walk trajectory inside
// bounds: heading changes follow a bounded random turn at every step.
// It models pedestrian-like motion for tests that do not need a road
// network.
func RandomWalk(id string, bounds geo.Rect, n int, speed, dt float64, seed int64) *trajectory.Trajectory {
	rng := rand.New(rand.NewSource(seed))
	pos := geo.Pt(
		bounds.Min.X+rng.Float64()*bounds.Width(),
		bounds.Min.Y+rng.Float64()*bounds.Height(),
	)
	heading := rng.Float64() * 2 * math.Pi
	pts := make([]trajectory.Point, 0, n)
	for i := 0; i < n; i++ {
		pts = append(pts, trajectory.Point{T: float64(i) * dt, Pos: pos})
		heading += (rng.Float64() - 0.5) * 0.6
		step := geo.Pt(speed*dt*math.Cos(heading), speed*dt*math.Sin(heading))
		next := pos.Add(step)
		// Reflect at the boundary.
		if next.X < bounds.Min.X || next.X > bounds.Max.X {
			heading = math.Pi - heading
			next.X = pos.X
		}
		if next.Y < bounds.Min.Y || next.Y > bounds.Max.Y {
			heading = -heading
			next.Y = pos.Y
		}
		pos = next
	}
	return trajectory.New(id, pts)
}

// StopAndGoTrips is like Trips but vehicles dwell at a fraction of the
// intersections along their route (traffic lights, pickups), producing
// the stop episodes that stay-point detection and semantic annotation
// consume. Dwells emit stationary samples with small jitter.
func StopAndGoTrips(g *roadnet.Graph, opt TripOptions, stopProb, stopDuration float64) []*trajectory.Trajectory {
	if stopProb < 0 {
		stopProb = 0
	}
	if stopDuration <= 0 {
		stopDuration = 30
	}
	base := TripsWithRoutes(g, opt)
	rng := rand.New(rand.NewSource(opt.Seed + 7919))
	out := make([]*trajectory.Trajectory, 0, len(base))
	for _, trip := range base {
		speed := opt.Speed
		if speed <= 0 {
			speed = 13.9
		}
		dt := opt.SampleInterval
		if dt <= 0 {
			dt = 1
		}
		pl := g.Geometry(trip.Path)
		// Node arc-length offsets along the path geometry.
		var stops []float64
		var walked float64
		for i := 1; i < len(pl); i++ {
			walked += pl[i-1].Dist(pl[i])
			if rng.Float64() < stopProb {
				stops = append(stops, walked)
			}
		}
		var pts []trajectory.Point
		t, d, nextStop := 0.0, 0.0, 0
		total := pl.Length()
		for d < total {
			pts = append(pts, trajectory.Point{T: t, Pos: pl.PointAt(d)})
			// Dwell when passing a stop.
			if nextStop < len(stops) && d >= stops[nextStop] {
				stopPos := pl.PointAt(stops[nextStop])
				for dwell := dt; dwell <= stopDuration; dwell += dt {
					t += dt
					jit := geo.Pt(rng.NormFloat64()*0.5, rng.NormFloat64()*0.5)
					pts = append(pts, trajectory.Point{T: t, Pos: stopPos.Add(jit)})
				}
				nextStop++
			}
			d += speed * dt
			t += dt
		}
		pts = append(pts, trajectory.Point{T: t, Pos: pl.PointAt(total)})
		out = append(out, trajectory.New(trip.Truth.ID, pts))
	}
	return out
}
