package simulate

import (
	"math"
	"math/rand"
	"testing"

	"sidq/internal/geo"
	"sidq/internal/roadnet"
	"sidq/internal/stid"
	"sidq/internal/trajectory"
)

func testCity() *roadnet.Graph {
	return roadnet.GridCity(roadnet.GridCityOptions{
		NX: 8, NY: 8, Spacing: 100, Jitter: 5, RemoveFrac: 0.15, Seed: 42,
	})
}

func TestTripsDeterministicAndOnNetwork(t *testing.T) {
	g := testCity()
	opt := TripOptions{NumObjects: 5, SampleInterval: 1, Seed: 9}
	trips := Trips(g, opt)
	trips2 := Trips(g, opt)
	if len(trips) != 5 {
		t.Fatalf("trips = %d", len(trips))
	}
	for i := range trips {
		if trips[i].Len() != trips2[i].Len() {
			t.Fatal("generator not deterministic")
		}
		if trips[i].Len() < 2 {
			t.Fatalf("trip %d too short", i)
		}
	}
	// Every point lies near some edge of the network (on it, up to jitterless snap tolerance).
	s := roadnet.NewSnapper(g, 100)
	for _, tr := range trips {
		for _, p := range tr.Points {
			snap, ok := s.Nearest(p.Pos)
			if !ok || snap.Dist > 1e-6 {
				t.Fatalf("trip point %v off network by %v", p.Pos, snap.Dist)
			}
		}
	}
}

func TestTripsConstantSpeed(t *testing.T) {
	g := testCity()
	trips := Trips(g, TripOptions{NumObjects: 3, Speed: 10, SampleInterval: 1, Seed: 1})
	for _, tr := range trips {
		speeds := tr.Speeds()
		for i, s := range speeds[:len(speeds)-1] { // last segment may be shorter
			// Sampling cuts polyline corners, so observed speed can drop
			// to ~speed/sqrt(2) at a right-angle turn, never above speed.
			if s > 10.5 || s < 6.5 {
				t.Fatalf("segment %d speed %v", i, s)
			}
		}
	}
}

func TestTripsWithRoutes(t *testing.T) {
	g := testCity()
	trips := TripsWithRoutes(g, TripOptions{NumObjects: 4, Seed: 3})
	for _, trip := range trips {
		if len(trip.Path.Nodes) < 2 {
			t.Fatal("route too short")
		}
		// Trajectory endpoints coincide with route endpoints.
		first := g.Node(trip.Path.Nodes[0]).Pos
		last := g.Node(trip.Path.Nodes[len(trip.Path.Nodes)-1]).Pos
		if trip.Truth.Points[0].Pos.Dist(first) > 1e-6 {
			t.Fatal("start mismatch")
		}
		if trip.Truth.Points[trip.Truth.Len()-1].Pos.Dist(last) > 1e-6 {
			t.Fatal("end mismatch")
		}
	}
}

func TestRandomWalkStaysInBounds(t *testing.T) {
	bounds := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(100, 100)}
	tr := RandomWalk("w", bounds, 500, 1.5, 1, 7)
	if tr.Len() != 500 {
		t.Fatalf("len = %d", tr.Len())
	}
	for _, p := range tr.Points {
		if !bounds.Contains(p.Pos) {
			t.Fatalf("point %v escaped bounds", p.Pos)
		}
	}
}

func TestAddGaussianNoiseStats(t *testing.T) {
	truth := RandomWalk("w", geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1000, 1000)}, 2000, 1.5, 1, 1)
	noisy := AddGaussianNoise(truth, 5, 2)
	var sum float64
	for i := range noisy.Points {
		sum += noisy.Points[i].Pos.Dist(truth.Points[i].Pos)
	}
	mean := sum / float64(noisy.Len())
	// Mean displacement of 2D Gaussian with sigma=5 is sigma*sqrt(pi/2) ≈ 6.27.
	if mean < 5.5 || mean > 7.0 {
		t.Fatalf("mean displacement = %v", mean)
	}
	// Truth untouched.
	if truth.Points[0].Pos != AddGaussianNoise(truth, 5, 2).Points[0].Pos.Sub(noisy.Points[0].Pos).Add(noisy.Points[0].Pos) {
		t.Log("determinism check") // same seed must give same noise
	}
	n2 := AddGaussianNoise(truth, 5, 2)
	for i := range n2.Points {
		if n2.Points[i] != noisy.Points[i] {
			t.Fatal("noise not deterministic")
		}
	}
}

func TestInjectOutliers(t *testing.T) {
	truth := RandomWalk("w", geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1000, 1000)}, 1000, 1.5, 1, 3)
	noisy, flags := InjectOutliers(truth, 0.1, 100, 4)
	var n int
	for i, f := range flags {
		d := noisy.Points[i].Pos.Dist(truth.Points[i].Pos)
		if f {
			n++
			if d < 100 {
				t.Fatalf("outlier %d displaced only %v", i, d)
			}
		} else if d != 0 {
			t.Fatalf("non-outlier %d moved", i)
		}
	}
	if n < 60 || n > 140 { // ~100 expected
		t.Fatalf("outliers injected = %d", n)
	}
}

func TestDropAndDuplicate(t *testing.T) {
	truth := RandomWalk("w", geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(100, 100)}, 1000, 1, 1, 5)
	dropped := DropSamples(truth, 0.3, 6)
	if dropped.Len() >= truth.Len() || dropped.Len() < 500 {
		t.Fatalf("dropped len = %d", dropped.Len())
	}
	if dropped.Points[0] != truth.Points[0] ||
		dropped.Points[dropped.Len()-1] != truth.Points[truth.Len()-1] {
		t.Fatal("endpoints not preserved")
	}
	dup := DuplicateSamples(truth, 0.2, 7)
	if dup.Len() <= truth.Len() {
		t.Fatalf("dup len = %d", dup.Len())
	}
}

func TestJitterAndDelay(t *testing.T) {
	truth := RandomWalk("w", geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(100, 100)}, 200, 1, 1, 8)
	jit := JitterTimestamps(truth, 5, 9)
	disordered := false
	for i := 1; i < jit.Len(); i++ {
		if jit.Points[i].T < jit.Points[i-1].T {
			disordered = true
		}
	}
	if !disordered {
		t.Fatal("jitter produced no disorder (sigma 5 over dt 1 should)")
	}
	delayed, delays := DelayReports(truth, 3, 10)
	var mean float64
	for i, d := range delays {
		if d < 0 {
			t.Fatal("negative delay")
		}
		if delayed.Points[i].T != truth.Points[i].T+d {
			t.Fatal("delay not applied")
		}
		mean += d
	}
	mean /= float64(len(delays))
	if mean < 2 || mean > 4 {
		t.Fatalf("mean delay = %v", mean)
	}
}

func TestCorruptionApply(t *testing.T) {
	truth := RandomWalk("w", geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(500, 500)}, 500, 1.5, 1, 11)
	c := Corruption{NoiseSigma: 3, OutlierRate: 0.05, OutlierMag: 50, DropRate: 0.1, Seed: 12}
	got, flags := c.Apply(truth)
	if got.Len() >= truth.Len() {
		t.Fatal("drop not applied")
	}
	if len(flags) != got.Len() {
		t.Fatal("flag alignment")
	}
	var any bool
	for _, f := range flags {
		any = any || f
	}
	if !any {
		t.Fatal("no outliers injected")
	}
	// Zero corruption is identity.
	id, flags0 := Corruption{}.Apply(truth)
	if id.Len() != truth.Len() {
		t.Fatal("identity corruption changed length")
	}
	for _, f := range flags0 {
		if f {
			t.Fatal("identity corruption flagged outliers")
		}
	}
}

func TestFieldSmoothness(t *testing.T) {
	f := NewField(FieldOptions{Seed: 13})
	// Spatial smoothness: nearby points have nearby values.
	p := geo.Pt(400, 400)
	v0 := f.Value(p, 0)
	v1 := f.Value(p.Add(geo.Pt(1, 1)), 0)
	if math.Abs(v0-v1) > 1 {
		t.Fatalf("field not smooth: %v vs %v", v0, v1)
	}
	// Temporal variation exists.
	if f.Value(p, 0) == f.Value(p, 21600) {
		t.Fatal("field has no temporal variation")
	}
	// Determinism.
	f2 := NewField(FieldOptions{Seed: 13})
	if f2.Value(p, 123) != f.Value(p, 123) {
		t.Fatal("field not deterministic")
	}
}

func TestSensorNetwork(t *testing.T) {
	f := NewField(FieldOptions{Seed: 14})
	sensors, readings := SensorNetwork(f, SensorNetworkOptions{
		NumSensors: 20, Interval: 600, Duration: 6000, NoiseSigma: 1, BiasSigma: 2, Seed: 15,
	})
	if len(sensors) != 20 {
		t.Fatalf("sensors = %d", len(sensors))
	}
	// 11 epochs * 20 sensors with no dropout.
	if len(readings) != 11*20 {
		t.Fatalf("readings = %d", len(readings))
	}
	// Readings approximate the field up to bias + noise.
	var worst float64
	for _, r := range readings {
		err := math.Abs(r.Value - f.Value(r.Pos, r.T))
		if err > worst {
			worst = err
		}
	}
	if worst > 15 { // bias sigma 2 + noise sigma 1 → ~10 is a generous cap
		t.Fatalf("worst reading error = %v", worst)
	}
	// Dropout reduces count.
	_, sparse := SensorNetwork(f, SensorNetworkOptions{
		NumSensors: 20, Interval: 600, Duration: 6000, DropRate: 0.5, Seed: 16,
	})
	if len(sparse) >= 11*20 {
		t.Fatal("dropout ineffective")
	}
	// Series grouping works on generated ids.
	series := stid.NewSeries(readings)
	if len(series) != 20 {
		t.Fatalf("series = %d", len(series))
	}
}

func TestInjectValueOutliers(t *testing.T) {
	f := NewField(FieldOptions{Seed: 17})
	_, readings := SensorNetwork(f, SensorNetworkOptions{NumSensors: 10, Interval: 60, Duration: 6000, Seed: 18})
	corrupted, flags := InjectValueOutliers(readings, 0.1, 50, 19)
	var n int
	for i := range corrupted {
		diff := math.Abs(corrupted[i].Value - readings[i].Value)
		if flags[i] {
			n++
			if diff < 50 {
				t.Fatalf("outlier %d spike only %v", i, diff)
			}
		} else if diff != 0 {
			t.Fatal("clean reading modified")
		}
	}
	if n == 0 {
		t.Fatal("no outliers")
	}
}

func TestRadioEnvMonotone(t *testing.T) {
	bounds := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(100, 100)}
	env := NewRadioEnv(bounds, 9, 2.5, 0, 20)
	if len(env.Beacons) != 9 {
		t.Fatalf("beacons = %d", len(env.Beacons))
	}
	b := env.Beacons[0]
	near := env.TrueRSSI(b, b.Pos.Add(geo.Pt(2, 0)))
	far := env.TrueRSSI(b, b.Pos.Add(geo.Pt(50, 0)))
	if near <= far {
		t.Fatalf("RSSI not monotone: near %v far %v", near, far)
	}
	// Sub-meter distances clamp to 1 m.
	if env.TrueRSSI(b, b.Pos) != b.TxPower {
		t.Fatal("RSSI at 0 distance should equal TxPower")
	}
}

func TestFingerprintMapAndObserve(t *testing.T) {
	bounds := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(50, 50)}
	env := NewRadioEnv(bounds, 4, 2.5, 2, 21)
	fps := env.FingerprintMap(bounds, 10, 3, 22)
	if len(fps) != 36 { // 6x6 grid at spacing 10 over [0,50]
		t.Fatalf("fingerprints = %d", len(fps))
	}
	for _, fp := range fps {
		if len(fp.RSSI) != 4 {
			t.Fatal("fingerprint vector size")
		}
	}
	rng := rand.New(rand.NewSource(23))
	obs := env.Observe(geo.Pt(25, 25), rng)
	if len(obs) != 4 {
		t.Fatal("observation size")
	}
	ranges := env.ObserveRanges(geo.Pt(25, 25), 1, rng)
	for _, r := range ranges {
		if r.Range < 0.1 {
			t.Fatal("range floor violated")
		}
	}
}

func TestSymbolicWorld(t *testing.T) {
	w := Symbolic("obj1", SymbolicOptions{
		NumReaders: 8, Spacing: 20, Range: 8, Epoch: 1, Speed: 2,
		FalseNeg: 0.2, FalsePos: 0.05, Seed: 24,
	})
	if len(w.Readers) != 8 {
		t.Fatalf("readers = %d", len(w.Readers))
	}
	if len(w.Epochs) == 0 || len(w.Detections) == 0 {
		t.Fatal("no epochs or detections")
	}
	// Truth must cover every epoch key.
	for _, e := range w.Epochs {
		if _, ok := w.Truth[e]; !ok {
			t.Fatalf("epoch %v missing truth", e)
		}
	}
	// With FN=0, FP=0 the detections match the truth exactly.
	clean := Symbolic("obj1", SymbolicOptions{
		NumReaders: 8, Spacing: 20, Range: 8, Epoch: 1, Speed: 2, Seed: 25,
	})
	for _, d := range clean.Detections {
		if clean.Truth[d.T] != d.ReaderID {
			t.Fatalf("clean detection %v disagrees with truth %q", d, clean.Truth[d.T])
		}
	}
	// Faulty world must contain at least one FP or FN.
	var faults int
	seen := map[float64]map[string]bool{}
	for _, d := range w.Detections {
		if seen[d.T] == nil {
			seen[d.T] = map[string]bool{}
		}
		seen[d.T][d.ReaderID] = true
		if w.Truth[d.T] != d.ReaderID {
			faults++ // false positive
		}
	}
	for _, e := range w.Epochs {
		if trueID := w.Truth[e]; trueID != "" && !seen[e][trueID] {
			faults++ // false negative
		}
	}
	if faults == 0 {
		t.Fatal("no faults injected at 20% FN / 5% FP")
	}
}

func TestCheckInsGenerator(t *testing.T) {
	pois, events := CheckIns(CheckInOptions{NumPOIs: 20, NumUsers: 5, VisitsEach: 30, Uncertainty: 0.3, Seed: 26})
	if len(pois) != 20 {
		t.Fatalf("pois = %d", len(pois))
	}
	if len(events) == 0 {
		t.Fatal("no events")
	}
	poiIDs := map[string]bool{}
	for _, p := range pois {
		poiIDs[p.ID] = true
	}
	for i, e := range events {
		if i > 0 && e.T < events[i-1].T {
			t.Fatal("events not time ordered")
		}
		if !poiIDs[e.TruePOI] {
			t.Fatalf("unknown true poi %q", e.TruePOI)
		}
		var mass float64
		for _, c := range e.Candidates {
			mass += c.Prob
			if !poiIDs[c.POI] {
				t.Fatalf("unknown candidate poi %q", c.POI)
			}
		}
		if math.Abs(mass-1) > 1e-9 {
			t.Fatalf("candidate mass = %v", mass)
		}
		if e.Candidates[0].POI != e.TruePOI {
			t.Fatal("first candidate should be the true poi")
		}
	}
	// Zero uncertainty yields single certain candidates.
	_, certain := CheckIns(CheckInOptions{NumPOIs: 10, NumUsers: 2, VisitsEach: 5, Seed: 27})
	for _, e := range certain {
		if len(e.Candidates) != 1 || e.Candidates[0].Prob != 1 {
			t.Fatal("certain check-in has uncertainty")
		}
	}
}

var _ = trajectory.Trajectory{} // keep import for helper types in this file

func TestStopAndGoTripsProduceStayPoints(t *testing.T) {
	g := testCity()
	trips := StopAndGoTrips(g, TripOptions{NumObjects: 3, MinHops: 10, Speed: 10, SampleInterval: 1, Seed: 77}, 0.3, 45)
	if len(trips) != 3 {
		t.Fatalf("trips = %d", len(trips))
	}
	foundStays := 0
	for _, tr := range trips {
		stays := tr.StayPoints(5, 30)
		foundStays += len(stays)
		// Time still strictly ordered.
		for i := 1; i < tr.Len(); i++ {
			if tr.Points[i].T <= tr.Points[i-1].T {
				t.Fatal("non-monotone time")
			}
		}
	}
	if foundStays == 0 {
		t.Fatal("no stay points detected in stop-and-go traffic")
	}
	// Zero stop probability degenerates to plain driving (no stays).
	plain := StopAndGoTrips(g, TripOptions{NumObjects: 2, MinHops: 10, Speed: 10, SampleInterval: 1, Seed: 78}, 0, 45)
	for _, tr := range plain {
		if len(tr.StayPoints(5, 30)) != 0 {
			t.Fatal("unexpected stays without stops")
		}
	}
}
