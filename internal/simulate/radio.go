package simulate

import (
	"fmt"
	"math"
	"math/rand"

	"sidq/internal/geo"
)

// Beacon is a fixed radio anchor (WiFi AP / BLE beacon) with known
// position and transmit power.
type Beacon struct {
	ID      string
	Pos     geo.Point
	TxPower float64 // RSSI at 1 m, dBm
}

// RadioEnv models a log-distance path-loss radio environment. RSSI at
// distance d from a beacon is TxPower - 10*n*log10(d) + noise, the
// standard model used by WiFi fingerprinting literature.
type RadioEnv struct {
	Beacons  []Beacon
	PathLoss float64 // path-loss exponent n (typical 2-4)
	Sigma    float64 // shadowing noise stddev, dB
}

// NewRadioEnv places numBeacons beacons on a jittered grid inside
// bounds. Grid placement guarantees coverage; jitter avoids degenerate
// symmetry.
func NewRadioEnv(bounds geo.Rect, numBeacons int, pathLoss, sigma float64, seed int64) *RadioEnv {
	if numBeacons <= 0 {
		numBeacons = 9
	}
	if pathLoss <= 0 {
		pathLoss = 2.5
	}
	rng := rand.New(rand.NewSource(seed))
	side := int(math.Ceil(math.Sqrt(float64(numBeacons))))
	env := &RadioEnv{PathLoss: pathLoss, Sigma: sigma}
	for i := 0; i < numBeacons; i++ {
		gx := i % side
		gy := i / side
		cellW := bounds.Width() / float64(side)
		cellH := bounds.Height() / float64(side)
		env.Beacons = append(env.Beacons, Beacon{
			ID: fmt.Sprintf("b%d", i),
			Pos: geo.Pt(
				bounds.Min.X+(float64(gx)+0.25+0.5*rng.Float64())*cellW,
				bounds.Min.Y+(float64(gy)+0.25+0.5*rng.Float64())*cellH,
			),
			TxPower: -40,
		})
	}
	return env
}

// TrueRSSI returns the noise-free RSSI of beacon b observed at p.
func (env *RadioEnv) TrueRSSI(b Beacon, p geo.Point) float64 {
	d := math.Max(b.Pos.Dist(p), 1)
	return b.TxPower - 10*env.PathLoss*math.Log10(d)
}

// Observe returns one RSSI vector (indexed like env.Beacons) measured
// at p with shadowing noise from rng.
func (env *RadioEnv) Observe(p geo.Point, rng *rand.Rand) []float64 {
	out := make([]float64, len(env.Beacons))
	for i, b := range env.Beacons {
		out[i] = env.TrueRSSI(b, p) + rng.NormFloat64()*env.Sigma
	}
	return out
}

// Fingerprint is one labeled radio observation: the RSSI vector
// measured at a known position, used to build WkNN fingerprint maps.
type Fingerprint struct {
	Pos  geo.Point
	RSSI []float64
}

// FingerprintMap builds a survey database: a grid of labeled RSSI
// observations at the given spacing, each averaged over nAvg noisy
// observations (site surveys average multiple scans per point).
func (env *RadioEnv) FingerprintMap(bounds geo.Rect, spacing float64, nAvg int, seed int64) []Fingerprint {
	if spacing <= 0 {
		spacing = 10
	}
	if nAvg <= 0 {
		nAvg = 3
	}
	rng := rand.New(rand.NewSource(seed))
	var out []Fingerprint
	for y := bounds.Min.Y; y <= bounds.Max.Y; y += spacing {
		for x := bounds.Min.X; x <= bounds.Max.X; x += spacing {
			p := geo.Pt(x, y)
			acc := make([]float64, len(env.Beacons))
			for k := 0; k < nAvg; k++ {
				obs := env.Observe(p, rng)
				for i, v := range obs {
					acc[i] += v
				}
			}
			for i := range acc {
				acc[i] /= float64(nAvg)
			}
			out = append(out, Fingerprint{Pos: p, RSSI: acc})
		}
	}
	return out
}

// RangingObservation is a distance measurement to an anchor, as
// produced by time-of-flight or RSSI ranging. Used by multilateration.
type RangingObservation struct {
	Anchor geo.Point
	Range  float64 // measured distance, meters
}

// ObserveRanges returns noisy distance measurements from p to every
// beacon (stddev sigma meters, floored at 0.1 m).
func (env *RadioEnv) ObserveRanges(p geo.Point, sigma float64, rng *rand.Rand) []RangingObservation {
	out := make([]RangingObservation, len(env.Beacons))
	for i, b := range env.Beacons {
		r := b.Pos.Dist(p) + rng.NormFloat64()*sigma
		if r < 0.1 {
			r = 0.1
		}
		out[i] = RangingObservation{Anchor: b.Pos, Range: r}
	}
	return out
}
