package simulate

import (
	"math"
	"math/rand"

	"sidq/internal/geo"
	"sidq/internal/trajectory"
)

// AddGaussianNoise returns a copy of tr with isotropic Gaussian noise
// of the given standard deviation (meters) added to every position.
func AddGaussianNoise(tr *trajectory.Trajectory, sigma float64, seed int64) *trajectory.Trajectory {
	rng := rand.New(rand.NewSource(seed))
	out := tr.Clone()
	for i := range out.Points {
		out.Points[i].Pos = out.Points[i].Pos.Add(geo.Pt(
			rng.NormFloat64()*sigma,
			rng.NormFloat64()*sigma,
		))
	}
	return out
}

// InjectOutliers returns a copy of tr where each point independently
// becomes a gross outlier with probability rate: it is displaced by a
// vector of magnitude uniform in [minMag, 2*minMag] in a random
// direction. The returned boolean slice flags the injected outliers
// (ground truth for detector evaluation).
func InjectOutliers(tr *trajectory.Trajectory, rate, minMag float64, seed int64) (*trajectory.Trajectory, []bool) {
	rng := rand.New(rand.NewSource(seed))
	out := tr.Clone()
	flags := make([]bool, len(out.Points))
	for i := range out.Points {
		if rng.Float64() >= rate {
			continue
		}
		ang := rng.Float64() * 2 * math.Pi
		mag := minMag * (1 + rng.Float64())
		out.Points[i].Pos = out.Points[i].Pos.Add(geo.Pt(mag*math.Cos(ang), mag*math.Sin(ang)))
		flags[i] = true
	}
	return out, flags
}

// DropSamples returns a copy of tr with each interior point
// independently removed with the given probability (endpoints are
// kept), modeling incomplete collection.
func DropSamples(tr *trajectory.Trajectory, rate float64, seed int64) *trajectory.Trajectory {
	rng := rand.New(rand.NewSource(seed))
	out := &trajectory.Trajectory{ID: tr.ID}
	for i, p := range tr.Points {
		if i != 0 && i != len(tr.Points)-1 && rng.Float64() < rate {
			continue
		}
		out.Points = append(out.Points, p)
	}
	return out
}

// DuplicateSamples returns a copy of tr where each point is emitted
// again with the given probability, modeling duplicated reports from
// redundant IoT transmission.
func DuplicateSamples(tr *trajectory.Trajectory, rate float64, seed int64) *trajectory.Trajectory {
	rng := rand.New(rand.NewSource(seed))
	out := &trajectory.Trajectory{ID: tr.ID}
	for _, p := range tr.Points {
		out.Points = append(out.Points, p)
		for rng.Float64() < rate {
			out.Points = append(out.Points, p)
		}
	}
	return out
}

// JitterTimestamps returns a copy of tr with Gaussian jitter (stddev
// sigma seconds) added to every interior timestamp WITHOUT re-sorting,
// modeling clock skew and out-of-order arrival. The returned trajectory
// may therefore violate time monotonicity, which is the point.
func JitterTimestamps(tr *trajectory.Trajectory, sigma float64, seed int64) *trajectory.Trajectory {
	rng := rand.New(rand.NewSource(seed))
	out := tr.Clone()
	for i := 1; i < len(out.Points)-1; i++ {
		out.Points[i].T += rng.NormFloat64() * sigma
	}
	return out
}

// DelayReports returns a copy of tr where each point's timestamp is
// shifted later by an exponentially distributed transmission delay with
// the given mean (seconds). Positions are unchanged: this models
// latency between measurement and availability, and the delays are also
// returned so experiments can measure staleness.
func DelayReports(tr *trajectory.Trajectory, meanDelay float64, seed int64) (*trajectory.Trajectory, []float64) {
	rng := rand.New(rand.NewSource(seed))
	out := tr.Clone()
	delays := make([]float64, len(out.Points))
	for i := range out.Points {
		d := rng.ExpFloat64() * meanDelay
		delays[i] = d
		out.Points[i].T += d
	}
	return out, delays
}

// Corruption bundles the standard GPS corruption pipeline applied to a
// ground-truth trajectory: noise, outliers, and sample dropping. Fields
// left zero are skipped.
type Corruption struct {
	NoiseSigma  float64
	OutlierRate float64
	OutlierMag  float64
	DropRate    float64
	Seed        int64
}

// Apply corrupts truth and returns the degraded trajectory plus the
// outlier ground-truth flags (aligned to the returned trajectory's
// points; false where no outlier was injected).
func (c Corruption) Apply(truth *trajectory.Trajectory) (*trajectory.Trajectory, []bool) {
	cur := truth.Clone()
	if c.DropRate > 0 {
		cur = DropSamples(cur, c.DropRate, c.Seed+1)
	}
	if c.NoiseSigma > 0 {
		cur = AddGaussianNoise(cur, c.NoiseSigma, c.Seed+2)
	}
	flags := make([]bool, len(cur.Points))
	if c.OutlierRate > 0 {
		mag := c.OutlierMag
		if mag <= 0 {
			mag = 10 * math.Max(c.NoiseSigma, 1)
		}
		cur, flags = InjectOutliers(cur, c.OutlierRate, mag, c.Seed+3)
	}
	return cur, flags
}
