package simulate

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"strings"
	"testing"
)

func TestReplayDeterministic(t *testing.T) {
	opt := ReplayOptions{Seed: 7, Sources: 3}
	a, b := NewReplay(opt), NewReplay(opt)
	for chunk := 0; chunk < 5; chunk++ {
		ca := a.AppendChunk(nil, 2, chunk, 48)
		cb := b.AppendChunk(nil, 2, chunk, 48)
		if !bytes.Equal(ca, cb) {
			t.Fatalf("chunk %d differs between identically-seeded replays", chunk)
		}
	}
	if !bytes.Equal(a.BatchCSV(2), b.BatchCSV(2)) {
		t.Fatal("BatchCSV differs between identically-seeded replays")
	}
	c := NewReplay(ReplayOptions{Seed: 8, Sources: 3})
	if bytes.Equal(a.AppendChunk(nil, 2, 0, 48), c.AppendChunk(nil, 2, 0, 48)) {
		t.Fatal("different seeds produced identical chunks")
	}
}

func TestReplayChunkFormatAndNamespaces(t *testing.T) {
	r := NewReplay(ReplayOptions{Seed: 1, Sources: 2})
	raw := r.AppendChunk(nil, 3, 0, 16)
	cr := csv.NewReader(bytes.NewReader(raw))
	cr.FieldsPerRecord = 4
	rows, err := cr.ReadAll()
	if err != nil {
		t.Fatalf("chunk is not 4-field CSV: %v", err)
	}
	if len(rows) != 16 {
		t.Fatalf("got %d rows, want 16", len(rows))
	}
	for _, row := range rows {
		if !strings.HasPrefix(row[0], "w3-s") {
			t.Fatalf("source id %q not namespaced to stream 3", row[0])
		}
		for _, f := range row[1:] {
			if _, err := strconv.ParseFloat(f, 64); err != nil {
				t.Fatalf("field %q not a float: %v", f, err)
			}
		}
	}
}

func TestReplayTimesNonDecreasingAcrossWrap(t *testing.T) {
	r := NewReplay(ReplayOptions{Seed: 3, Sources: 2})
	// Enough chunks to wrap every source several times.
	last := map[string]float64{}
	for chunk := 0; chunk < 200; chunk++ {
		for _, p := range r.Points(0, chunk, 32) {
			if prev, ok := last[p.Source]; ok && p.T < prev {
				t.Fatalf("source %s time went backwards: %v after %v (chunk %d)", p.Source, p.T, prev, chunk)
			}
			last[p.Source] = p.T
		}
	}
	if len(last) != 2 {
		t.Fatalf("saw %d sources, want 2", len(last))
	}
}

func TestReplayExtentAndSpan(t *testing.T) {
	r := NewReplay(ReplayOptions{Seed: 5})
	ext := r.Extent()
	if !(ext.Max.X > ext.Min.X && ext.Max.Y > ext.Min.Y) {
		t.Fatalf("degenerate extent %+v", ext)
	}
	if r.Span() <= 0 {
		t.Fatalf("span %v, want > 0", r.Span())
	}
	for _, p := range r.Points(0, 0, 64) {
		if p.X < ext.Min.X || p.X > ext.Max.X || p.Y < ext.Min.Y || p.Y > ext.Max.Y {
			t.Fatalf("point %+v outside extent %+v", p, ext)
		}
	}
}
