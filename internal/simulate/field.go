package simulate

import (
	"fmt"
	"math"
	"math/rand"

	"sidq/internal/geo"
	"sidq/internal/stid"
)

// Field is a smooth synthetic spatiotemporal scalar field (e.g. an air
// quality surface): a sum of Gaussian spatial bumps whose amplitudes
// oscillate over time, plus a global diurnal component. The field is
// spatially autocorrelated and varies smoothly — the two Table-1
// characteristics interpolation methods rely on.
type Field struct {
	bumps   []fieldBump
	base    float64
	diurnal float64 // amplitude of the shared daily cycle
	period  float64 // seconds per cycle
}

type fieldBump struct {
	center geo.Point
	sigma  float64
	amp    float64
	phase  float64
}

// FieldOptions configures the synthetic field generator.
type FieldOptions struct {
	Bounds   geo.Rect
	NumBumps int     // spatial structure complexity (default 6)
	Base     float64 // mean level (default 50)
	Amp      float64 // bump amplitude scale (default 30)
	Diurnal  float64 // daily-cycle amplitude (default 10)
	Period   float64 // cycle length in seconds (default 86400)
	Seed     int64
}

// NewField generates a random smooth field inside opt.Bounds.
func NewField(opt FieldOptions) *Field {
	if opt.NumBumps <= 0 {
		opt.NumBumps = 6
	}
	if opt.Base == 0 {
		opt.Base = 50
	}
	if opt.Amp == 0 {
		opt.Amp = 30
	}
	if opt.Diurnal == 0 {
		opt.Diurnal = 10
	}
	if opt.Period <= 0 {
		opt.Period = 86400
	}
	if opt.Bounds.IsEmpty() || opt.Bounds.Area() == 0 {
		opt.Bounds = geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1000, 1000)}
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	f := &Field{base: opt.Base, diurnal: opt.Diurnal, period: opt.Period}
	extent := math.Max(opt.Bounds.Width(), opt.Bounds.Height())
	for i := 0; i < opt.NumBumps; i++ {
		f.bumps = append(f.bumps, fieldBump{
			center: geo.Pt(
				opt.Bounds.Min.X+rng.Float64()*opt.Bounds.Width(),
				opt.Bounds.Min.Y+rng.Float64()*opt.Bounds.Height(),
			),
			sigma: extent * (0.1 + 0.2*rng.Float64()),
			amp:   opt.Amp * (rng.Float64()*2 - 1),
			phase: rng.Float64() * 2 * math.Pi,
		})
	}
	return f
}

// Value returns the true field value at position p and time t.
func (f *Field) Value(p geo.Point, t float64) float64 {
	v := f.base + f.diurnal*math.Sin(2*math.Pi*t/f.period)
	for _, b := range f.bumps {
		if b.sigma <= 0 {
			continue
		}
		d2 := p.DistSq(b.center)
		osc := 1 + 0.3*math.Sin(2*math.Pi*t/f.period+b.phase)
		v += b.amp * osc * math.Exp(-d2/(2*b.sigma*b.sigma))
	}
	return v
}

// SensorNetworkOptions configures sensor placement and sampling.
type SensorNetworkOptions struct {
	Bounds     geo.Rect
	NumSensors int     // default 25
	Interval   float64 // seconds between readings (default 300)
	Duration   float64 // total observation span in seconds (default 3600)
	NoiseSigma float64 // measurement noise stddev
	BiasSigma  float64 // per-sensor constant bias stddev
	DropRate   float64 // probability a scheduled reading is missing
	Seed       int64
}

// Sensor is a placed sensor with its hidden bias.
type Sensor struct {
	ID   string
	Pos  geo.Point
	Bias float64
}

// SensorNetwork places sensors uniformly at random and samples the
// field on a fixed schedule, applying per-sensor bias, white noise, and
// random dropouts. It returns the sensors and the observed readings.
func SensorNetwork(f *Field, opt SensorNetworkOptions) ([]Sensor, []stid.Reading) {
	if opt.NumSensors <= 0 {
		opt.NumSensors = 25
	}
	if opt.Interval <= 0 {
		opt.Interval = 300
	}
	if opt.Duration <= 0 {
		opt.Duration = 3600
	}
	if opt.Bounds.IsEmpty() || opt.Bounds.Area() == 0 {
		opt.Bounds = geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1000, 1000)}
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	sensors := make([]Sensor, opt.NumSensors)
	for i := range sensors {
		sensors[i] = Sensor{
			ID: fmt.Sprintf("s%d", i),
			Pos: geo.Pt(
				opt.Bounds.Min.X+rng.Float64()*opt.Bounds.Width(),
				opt.Bounds.Min.Y+rng.Float64()*opt.Bounds.Height(),
			),
			Bias: rng.NormFloat64() * opt.BiasSigma,
		}
	}
	var readings []stid.Reading
	for t := 0.0; t <= opt.Duration; t += opt.Interval {
		for _, s := range sensors {
			if rng.Float64() < opt.DropRate {
				continue
			}
			readings = append(readings, stid.Reading{
				SensorID: s.ID,
				Pos:      s.Pos,
				T:        t,
				Value:    f.Value(s.Pos, t) + s.Bias + rng.NormFloat64()*opt.NoiseSigma,
			})
		}
	}
	return sensors, readings
}

// InjectValueOutliers returns a copy of readings where each value
// independently becomes an outlier with probability rate by adding a
// spike of magnitude at least minMag (random sign). The flags mark the
// corrupted readings.
func InjectValueOutliers(readings []stid.Reading, rate, minMag float64, seed int64) ([]stid.Reading, []bool) {
	rng := rand.New(rand.NewSource(seed))
	out := append([]stid.Reading(nil), readings...)
	flags := make([]bool, len(out))
	for i := range out {
		if rng.Float64() >= rate {
			continue
		}
		spike := minMag * (1 + rng.Float64())
		if rng.Intn(2) == 0 {
			spike = -spike
		}
		out[i].Value += spike
		flags[i] = true
	}
	return out, flags
}
