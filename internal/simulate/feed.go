package simulate

// Deterministic multi-source replay feed for the load harness
// (cmd/sidqload). A Replay owns a fixed set of corrupted vehicle
// trajectories (grid city + Trips + Corruption, all seeded) and
// serves them as an endless sequence of ingest chunks: chunk k of
// stream i is a pure function of (seed, i, k), so a fixed-seed load
// profile replays the exact same bytes on every run. Each stream is an
// independent id namespace ("w<stream>-s<source>"), and when a stream
// exhausts a source's trajectory the replay wraps with a whole-cycle
// time offset, keeping every source's event times strictly
// non-decreasing — the property the per-source lateness watermark
// needs to never drop a wrapped replay as late.

import (
	"fmt"
	"strconv"

	"sidq/internal/geo"
	"sidq/internal/roadnet"
	"sidq/internal/trajectory"
)

// ReplayOptions configures the load-harness feed. Zero fields take the
// defaults noted on each field.
type ReplayOptions struct {
	Seed        int64
	Sources     int     // sources per stream (default 4)
	Grid        int     // city grid size, NxN intersections (default 8)
	NoiseSigma  float64 // GPS noise stddev, meters (default 5)
	OutlierRate float64 // outlier injection rate (default 0.02)
	DropRate    float64 // sample drop rate (default 0.05)
}

func (o ReplayOptions) withDefaults() ReplayOptions {
	if o.Sources <= 0 {
		o.Sources = 4
	}
	if o.Grid <= 0 {
		o.Grid = 8
	}
	if o.NoiseSigma == 0 {
		o.NoiseSigma = 5
	}
	if o.OutlierRate == 0 {
		o.OutlierRate = 0.02
	}
	if o.DropRate == 0 {
		o.DropRate = 0.05
	}
	return o
}

// ReplayPoint is one feed sample.
type ReplayPoint struct {
	Source  string
	T, X, Y float64
}

// replaySource is one base trajectory laid out flat for cheap replay.
type replaySource struct {
	t, x, y []float64
	span    float64 // one full cycle in event-time seconds
}

// Replay is the deterministic feed. Safe for concurrent use: all state
// is immutable after NewReplay.
type Replay struct {
	opt     ReplayOptions
	sources []replaySource
	extent  geo.Rect
}

// NewReplay builds the feed's base trajectories. The construction cost
// is paid once; Chunk afterwards only formats precomputed samples.
func NewReplay(opt ReplayOptions) *Replay {
	opt = opt.withDefaults()
	g := roadnet.GridCity(roadnet.GridCityOptions{
		NX: opt.Grid, NY: opt.Grid, Spacing: 120, Jitter: 8, RemoveFrac: 0.2, Seed: opt.Seed,
	})
	trips := Trips(g, TripOptions{
		NumObjects: opt.Sources, MinHops: 8, Speed: 12, SampleInterval: 1, Seed: opt.Seed + 1,
	})
	r := &Replay{opt: opt}
	first := true
	for i, truth := range trips {
		c := Corruption{
			NoiseSigma:  opt.NoiseSigma,
			OutlierRate: opt.OutlierRate,
			OutlierMag:  20 * opt.NoiseSigma,
			DropRate:    opt.DropRate,
			Seed:        opt.Seed + int64(i),
		}
		tr, _ := c.Apply(truth)
		if len(tr.Points) == 0 {
			tr = truth // a fully dropped trajectory cannot feed a stream
		}
		src := replaySource{
			t: make([]float64, len(tr.Points)),
			x: make([]float64, len(tr.Points)),
			y: make([]float64, len(tr.Points)),
		}
		t0 := tr.Points[0].T
		for j, p := range tr.Points {
			src.t[j] = p.T - t0
			src.x[j] = p.Pos.X
			src.y[j] = p.Pos.Y
			if first {
				r.extent = geo.RectFromPoints(p.Pos)
				first = false
			} else {
				r.extent = r.extent.ExtendPoint(p.Pos)
			}
		}
		src.span = src.t[len(src.t)-1] + 1 // +1 sample interval between cycles
		r.sources = append(r.sources, src)
	}
	return r
}

// Sources returns the number of sources per stream.
func (r *Replay) Sources() int { return len(r.sources) }

// Extent returns the bounding rect of every sample the feed can emit —
// the window generator for history range queries.
func (r *Replay) Extent() geo.Rect { return r.extent }

// Span returns the longest single-cycle duration across sources, in
// event-time seconds: chunk k's samples all fall in roughly
// [0, Span * (1 + k*size/points-per-cycle)).
func (r *Replay) Span() float64 {
	var max float64
	for _, s := range r.sources {
		if s.span > max {
			max = s.span
		}
	}
	return max
}

// at returns source j's sample at replay position p (wrapping with a
// whole-cycle time offset).
func (s *replaySource) at(p int) (t, x, y float64) {
	n := len(s.t)
	idx, cycle := p%n, p/n
	return s.t[idx] + float64(cycle)*s.span, s.x[idx], s.y[idx]
}

// Points returns chunk k of the given stream as decoded samples:
// size samples round-robined across the stream's sources, each source
// advancing through its trajectory and wrapping with a time offset.
func (r *Replay) Points(stream, chunk, size int) []ReplayPoint {
	out := make([]ReplayPoint, 0, size)
	base := chunk * size
	for n := 0; n < size; n++ {
		g := base + n
		j := g % len(r.sources)
		t, x, y := r.sources[j].at(g / len(r.sources))
		out = append(out, ReplayPoint{Source: sourceID(stream, j), T: t, X: x, Y: y})
	}
	return out
}

// AppendChunk appends chunk k of the given stream to dst as the
// "id,t,x,y" CSV rows POST /v1/stream/ingest accepts (no header), and
// returns the extended buffer.
func (r *Replay) AppendChunk(dst []byte, stream, chunk, size int) []byte {
	base := chunk * size
	for n := 0; n < size; n++ {
		g := base + n
		j := g % len(r.sources)
		t, x, y := r.sources[j].at(g / len(r.sources))
		dst = append(dst, sourceID(stream, j)...)
		dst = append(dst, ',')
		dst = strconv.AppendFloat(dst, t, 'f', -1, 64)
		dst = append(dst, ',')
		dst = strconv.AppendFloat(dst, x, 'f', -1, 64)
		dst = append(dst, ',')
		dst = strconv.AppendFloat(dst, y, 'f', -1, 64)
		dst = append(dst, '\n')
	}
	return dst
}

// BatchCSV renders the feed's first n base trajectories (all of them
// when n <= 0 or exceeds Sources) as standard trajectory CSV — the
// request body for batch /v1/clean traffic.
func (r *Replay) BatchCSV(n int) []byte {
	if n <= 0 || n > len(r.sources) {
		n = len(r.sources)
	}
	trs := make([]*trajectory.Trajectory, 0, n)
	for j := 0; j < n; j++ {
		s := &r.sources[j]
		pts := make([]trajectory.Point, len(s.t))
		for i := range s.t {
			pts[i] = trajectory.Point{T: s.t[i], Pos: geo.Pt(s.x[i], s.y[i])}
		}
		trs = append(trs, trajectory.New(sourceID(0, j), pts))
	}
	var buf csvBuffer
	if err := trajectory.WriteCSV(&buf, trs); err != nil {
		// WriteCSV to a memory buffer cannot fail; a change that makes it
		// fail should be loud.
		panic(fmt.Sprintf("simulate: BatchCSV: %v", err))
	}
	return buf.b
}

// csvBuffer is a minimal io.Writer over a byte slice.
type csvBuffer struct{ b []byte }

func (w *csvBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// sourceID names source j of a stream. Streams are independent id
// namespaces so concurrent sessions never share watermark state.
func sourceID(stream, j int) string {
	return "w" + strconv.Itoa(stream) + "-s" + strconv.Itoa(j)
}
