package reduce

import (
	"math"
	"testing"

	"sidq/internal/geo"
	"sidq/internal/roadnet"
	"sidq/internal/simulate"
	"sidq/internal/trajectory"
)

func TestDirectionPreservingBound(t *testing.T) {
	g := roadnet.GridCity(roadnet.GridCityOptions{NX: 10, NY: 10, Spacing: 150, Jitter: 10, RemoveFrac: 0.2, Seed: 11})
	trip := simulate.Trips(g, simulate.TripOptions{NumObjects: 1, MinHops: 14, Speed: 12, SampleInterval: 1, Seed: 11})[0]
	for _, maxAngle := range []float64{0.1, 0.3, 0.8} {
		simp := DirectionPreserving(trip, maxAngle)
		if simp.Len() >= trip.Len() {
			t.Fatalf("angle %v: no reduction", maxAngle)
		}
		// The greedy construction checks the bound when deciding to keep
		// a point; verify the final result stays within ~the bound (the
		// verifier uses chord coverage, which matches the construction).
		if got := VerifyDirectionError(trip, simp); got > maxAngle+0.15 {
			t.Fatalf("angle %v: direction error %v", maxAngle, got)
		}
	}
	// Looser bound keeps fewer points.
	if DirectionPreserving(trip, 0.8).Len() > DirectionPreserving(trip, 0.1).Len() {
		t.Fatal("not monotone in angle")
	}
}

func TestDirectionPreservingStraightLine(t *testing.T) {
	var pts []trajectory.Point
	for i := 0; i < 100; i++ {
		pts = append(pts, trajectory.Point{T: float64(i), Pos: geo.Pt(float64(i)*3, 0)})
	}
	tr := trajectory.New("line", pts)
	simp := DirectionPreserving(tr, 0.1)
	if simp.Len() != 2 {
		t.Fatalf("straight line should collapse to endpoints, got %d", simp.Len())
	}
	if VerifyDirectionError(tr, simp) > 1e-9 {
		t.Fatal("straight line direction error")
	}
}

func TestDirectionPreservingDegenerate(t *testing.T) {
	if got := DirectionPreserving(&trajectory.Trajectory{}, 0.5); got.Len() != 0 {
		t.Fatal("empty")
	}
	two := trajectory.New("t", []trajectory.Point{{T: 0}, {T: 1, Pos: geo.Pt(1, 0)}})
	if got := DirectionPreserving(two, 0.5); got.Len() != 2 {
		t.Fatal("two points")
	}
	// Duplicate positions must not panic and keep the bound meaningful.
	dup := trajectory.New("d", []trajectory.Point{
		{T: 0, Pos: geo.Pt(0, 0)},
		{T: 1, Pos: geo.Pt(0, 0)},
		{T: 2, Pos: geo.Pt(5, 0)},
		{T: 3, Pos: geo.Pt(5, 5)},
	})
	DirectionPreserving(dup, 0.3)
}

func TestAngleDiff(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{0, 0, 0},
		{math.Pi / 2, 0, math.Pi / 2},
		{-math.Pi + 0.1, math.Pi - 0.1, 0.2}, // wraparound
		{math.Pi, -math.Pi, 0},
	}
	for _, c := range cases {
		if got := angleDiff(c.a, c.b); math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("angleDiff(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}
