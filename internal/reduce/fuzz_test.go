package reduce

import (
	"bytes"
	"testing"

	"sidq/internal/roadnet"
)

// FuzzDeltaVarintDecode hardens the decoder against arbitrary bytes:
// it must never panic, and whatever decodes must re-encode/decode to
// the same values.
func FuzzDeltaVarintDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x02})
	f.Add(DeltaVarintEncode([]int64{1, -5, 1 << 40}))
	f.Fuzz(func(t *testing.T, data []byte) {
		vals, err := DeltaVarintDecode(data)
		if err != nil {
			return
		}
		back, err := DeltaVarintDecode(DeltaVarintEncode(vals))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(back) != len(vals) {
			t.Fatalf("length changed: %d vs %d", len(back), len(vals))
		}
		for i := range vals {
			if back[i] != vals[i] {
				t.Fatalf("value %d changed", i)
			}
		}
	})
}

// FuzzRiceDecode hardens the Rice decoder against arbitrary bytes.
func FuzzRiceDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{4, 3, 0xFF})
	f.Add(RiceEncode([]uint64{0, 7, 100, 1 << 50}, 4))
	f.Fuzz(func(t *testing.T, data []byte) {
		vals, err := RiceDecode(data)
		if err != nil {
			return
		}
		// Values that decode must round-trip at any legal k.
		back, err := RiceDecode(RiceEncode(vals, 5))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(back) != len(vals) {
			t.Fatalf("length changed")
		}
	})
}

// FuzzDecodeNetworkTrip hardens the trip decoder.
func FuzzDecodeNetworkTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeNetworkTrip(NetworkTrip{Route: []roadnet.EdgeID{1, 2, 3}, Times: []float64{1, 2, 3}}, 1))
	f.Fuzz(func(t *testing.T, data []byte) {
		trip, err := DecodeNetworkTrip(data)
		if err != nil {
			return
		}
		// Decoded trips re-encode without panicking.
		enc := EncodeNetworkTrip(trip, 1)
		if !bytes.Equal(enc, enc) {
			t.Fatal("unreachable")
		}
	})
}
