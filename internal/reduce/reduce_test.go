package reduce

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sidq/internal/geo"
	"sidq/internal/roadnet"
	"sidq/internal/simulate"
	"sidq/internal/trajectory"
)

func cityTrip(t *testing.T, seed int64) *trajectory.Trajectory {
	t.Helper()
	g := roadnet.GridCity(roadnet.GridCityOptions{NX: 10, NY: 10, Spacing: 150, Jitter: 10, RemoveFrac: 0.2, Seed: seed})
	trips := simulate.Trips(g, simulate.TripOptions{NumObjects: 1, MinHops: 12, Speed: 12, SampleInterval: 1, Seed: seed})
	return trips[0]
}

func TestDouglasPeuckerSEDBound(t *testing.T) {
	tr := cityTrip(t, 1)
	for _, eps := range []float64{2, 10, 50} {
		simp := DouglasPeuckerSED(tr, eps)
		if got := VerifySED(tr, simp); got > eps+1e-9 {
			t.Fatalf("eps=%v: bound violated: %v", eps, got)
		}
		if simp.Len() >= tr.Len() {
			t.Fatalf("eps=%v: no reduction (%d -> %d)", eps, tr.Len(), simp.Len())
		}
		// Endpoints preserved.
		if simp.Points[0] != tr.Points[0] || simp.Points[simp.Len()-1] != tr.Points[tr.Len()-1] {
			t.Fatal("endpoints lost")
		}
	}
}

func TestDouglasPeuckerMonotoneInEps(t *testing.T) {
	tr := cityTrip(t, 2)
	prev := math.MaxInt32
	for _, eps := range []float64{1, 5, 20, 80} {
		n := DouglasPeuckerSED(tr, eps).Len()
		if n > prev {
			t.Fatalf("kept points increased with eps: %d -> %d", prev, n)
		}
		prev = n
	}
}

func TestSlidingWindowBound(t *testing.T) {
	tr := cityTrip(t, 3)
	for _, eps := range []float64{5, 20} {
		simp := SlidingWindow(tr, eps)
		if got := VerifySED(tr, simp); got > eps+1e-9 {
			t.Fatalf("eps=%v: bound violated: %v", eps, got)
		}
		if simp.Len() >= tr.Len() {
			t.Fatal("no reduction")
		}
	}
}

func TestDeadReckoningReducesAndTracks(t *testing.T) {
	tr := cityTrip(t, 4)
	simp := DeadReckoning(tr, 15)
	if simp.Len() >= tr.Len()/2 {
		t.Fatalf("weak reduction: %d -> %d", tr.Len(), simp.Len())
	}
	// Dead reckoning bounds prediction error, not SED, but interpolated
	// error should still be moderate.
	if got := VerifySED(tr, simp); got > 60 {
		t.Fatalf("reconstruction error too large: %v", got)
	}
}

func TestSQUISHCapacityAndQuality(t *testing.T) {
	tr := cityTrip(t, 5)
	cap := 30
	simp := SQUISH(tr, cap)
	if simp.Len() != cap {
		t.Fatalf("kept %d, want capacity %d", simp.Len(), cap)
	}
	if simp.Points[0] != tr.Points[0] || simp.Points[simp.Len()-1] != tr.Points[tr.Len()-1] {
		t.Fatal("endpoints lost")
	}
	// SQUISH at equal point budget should beat uniform thinning on SED.
	stride := tr.Len() / cap
	uniform := tr.Thin(stride)
	if VerifySED(tr, simp) > VerifySED(tr, uniform)*1.5 {
		t.Fatalf("SQUISH error %v much worse than uniform %v",
			VerifySED(tr, simp), VerifySED(tr, uniform))
	}
	// Under-capacity input passes through.
	small := SQUISH(tr, tr.Len()+10)
	if small.Len() != tr.Len() {
		t.Fatal("under-capacity should pass through")
	}
}

func TestSimplifierDegenerateInputs(t *testing.T) {
	empty := &trajectory.Trajectory{}
	if DouglasPeuckerSED(empty, 5).Len() != 0 ||
		SlidingWindow(empty, 5).Len() != 0 ||
		DeadReckoning(empty, 5).Len() != 0 ||
		SQUISH(empty, 10).Len() != 0 {
		t.Fatal("empty inputs")
	}
	two := trajectory.New("t", []trajectory.Point{{T: 0}, {T: 1, Pos: geo.Pt(1, 0)}})
	if DouglasPeuckerSED(two, 5).Len() != 2 || SlidingWindow(two, 5).Len() != 2 {
		t.Fatal("two-point inputs")
	}
}

func TestNetworkTripRoundTripAndRatio(t *testing.T) {
	g := roadnet.GridCity(roadnet.GridCityOptions{NX: 10, NY: 10, Spacing: 150, Seed: 6})
	trips := simulate.TripsWithRoutes(g, simulate.TripOptions{NumObjects: 1, MinHops: 15, Speed: 12, SampleInterval: 1, Seed: 6})
	trip := trips[0]
	times := make([]float64, len(trip.Path.Edges))
	walked := 0.0
	for i, e := range trip.Path.Edges {
		walked += g.Edge(e).Length
		times[i] = walked / 12
	}
	nt := NetworkTrip{Route: trip.Path.Edges, Start: 0, Times: times}
	data := EncodeNetworkTrip(nt, 1)
	back, err := DecodeNetworkTrip(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Route) != len(nt.Route) {
		t.Fatalf("route length %d vs %d", len(back.Route), len(nt.Route))
	}
	for i := range nt.Route {
		if back.Route[i] != nt.Route[i] {
			t.Fatalf("edge %d mismatch", i)
		}
		if math.Abs(back.Times[i]-nt.Times[i]) > 0.5 { // quantum/2
			t.Fatalf("time %d off by %v", i, math.Abs(back.Times[i]-nt.Times[i]))
		}
	}
	raw := RawTripBytes(trip.Truth.Len())
	if ratio := float64(raw) / float64(len(data)); ratio < 10 {
		t.Fatalf("network compression ratio = %v", ratio)
	}
}

func TestDecodeNetworkTripCorrupt(t *testing.T) {
	if _, err := DecodeNetworkTrip([]byte{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("empty: %v", err)
	}
	good := EncodeNetworkTrip(NetworkTrip{Route: []roadnet.EdgeID{1, 2, 3}, Times: []float64{1, 2, 3}}, 1)
	if _, err := DecodeNetworkTrip(good[:len(good)-2]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated: %v", err)
	}
}

func TestQuantizeRoundTrip(t *testing.T) {
	vals := []float64{1.234, -5.678, 0, 100.001}
	q := Quantize(vals, 0.01)
	back := Dequantize(q, 0.01)
	for i := range vals {
		if math.Abs(back[i]-vals[i]) > 0.005 {
			t.Fatalf("quantize error %v", math.Abs(back[i]-vals[i]))
		}
	}
	if got := Quantize([]float64{5}, 0); got[0] != 5 {
		t.Fatal("zero step should default to 1")
	}
}

func TestDeltaVarintRoundTrip(t *testing.T) {
	vals := []int64{0, 1, 2, 100, -50, 1 << 40, -(1 << 40), 7}
	back, err := DeltaVarintDecode(DeltaVarintEncode(vals))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(vals) {
		t.Fatalf("len %d", len(back))
	}
	for i := range vals {
		if back[i] != vals[i] {
			t.Fatalf("value %d: %d vs %d", i, back[i], vals[i])
		}
	}
	if _, err := DeltaVarintDecode(nil); !errors.Is(err, ErrCorrupt) {
		t.Fatal("empty decode should fail")
	}
}

func TestDeltaVarintCompressesSmoothSeries(t *testing.T) {
	// Smooth series: deltas fit in 1-2 bytes vs 8 raw.
	vals := make([]int64, 1000)
	for i := range vals {
		vals[i] = int64(1000 + 10*math.Sin(float64(i)/20)*10)
	}
	enc := DeltaVarintEncode(vals)
	if ratio := float64(8*len(vals)) / float64(len(enc)); ratio < 4 {
		t.Fatalf("delta-varint ratio = %v", ratio)
	}
}

func TestRiceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]uint64, 500)
	for i := range vals {
		vals[i] = uint64(rng.Intn(200))
	}
	for _, k := range []uint8{0, 2, 4, 7} {
		back, err := RiceDecode(RiceEncode(vals, k))
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if len(back) != len(vals) {
			t.Fatalf("k=%d: len %d", k, len(back))
		}
		for i := range vals {
			if back[i] != vals[i] {
				t.Fatalf("k=%d value %d: %d vs %d", k, i, back[i], vals[i])
			}
		}
	}
}

func TestRiceHandlesHugeValues(t *testing.T) {
	vals := []uint64{0, 5, math.MaxUint64, 3, 1 << 50}
	back, err := RiceDecode(RiceEncode(vals, 3))
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if back[i] != vals[i] {
			t.Fatalf("value %d: %d vs %d", i, back[i], vals[i])
		}
	}
}

func TestRiceCompressesSmallDeltas(t *testing.T) {
	// Typical quantized sensor deltas: small non-negative after zigzag.
	rng := rand.New(rand.NewSource(8))
	vals := make([]uint64, 2000)
	for i := range vals {
		vals[i] = ZigZag(int64(rng.Intn(9) - 4))
	}
	enc := RiceEncode(vals, 2)
	if ratio := float64(8*len(vals)) / float64(len(enc)); ratio < 8 {
		t.Fatalf("rice ratio = %v", ratio)
	}
	if _, err := RiceDecode([]byte{40, 1}); !errors.Is(err, ErrCorrupt) {
		t.Fatal("bad k should fail")
	}
}

func TestZigZagRoundTrip(t *testing.T) {
	f := func(v int64) bool { return UnZigZag(ZigZag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if ZigZag(0) != 0 || ZigZag(-1) != 1 || ZigZag(1) != 2 {
		t.Fatal("zigzag mapping wrong")
	}
}

func fieldSamples(seed int64, n int) []Sample {
	f := simulate.NewField(simulate.FieldOptions{Seed: seed})
	rng := rand.New(rand.NewSource(seed + 1))
	out := make([]Sample, n)
	pos := geo.Pt(500, 500)
	for i := range out {
		t := float64(i) * 60
		out[i] = Sample{T: t, V: f.Value(pos, t) + rng.NormFloat64()*0.3}
	}
	return out
}

func TestLTCErrorBoundAndReduction(t *testing.T) {
	samples := fieldSamples(9, 1000)
	for _, eps := range []float64{0.5, 1, 3} {
		kept := LTC(samples, eps)
		if got := MaxReconstructionError(samples, kept); got > eps+1e-9 {
			t.Fatalf("eps=%v: error %v", eps, got)
		}
		if len(kept) >= len(samples) {
			t.Fatalf("eps=%v: no reduction", eps)
		}
	}
	// Bigger eps keeps fewer samples.
	if len(LTC(samples, 3)) > len(LTC(samples, 0.5)) {
		t.Fatal("LTC not monotone in eps")
	}
}

func TestLTCDegenerate(t *testing.T) {
	if got := LTC(nil, 1); len(got) != 0 {
		t.Fatal("empty LTC")
	}
	two := []Sample{{0, 1}, {1, 2}}
	if got := LTC(two, 1); len(got) != 2 {
		t.Fatal("two-sample LTC")
	}
	// Duplicate timestamps must not panic.
	dup := []Sample{{0, 1}, {0, 2}, {1, 3}, {1, 4}, {2, 5}}
	LTC(dup, 0.5)
}

func TestSuppressConstant(t *testing.T) {
	samples := []Sample{{0, 10}, {1, 10.1}, {2, 10.2}, {3, 15}, {4, 15.1}, {5, 20}}
	kept := SuppressConstant(samples, 1)
	if len(kept) != 3 { // 10, 15, 20
		t.Fatalf("kept = %d: %+v", len(kept), kept)
	}
	// Reconstruction holds last value.
	v, ok := ReconstructConstant(kept, 2.5)
	if !ok || v != 10 {
		t.Fatalf("reconstruct(2.5) = %v", v)
	}
	v, _ = ReconstructConstant(kept, 4.5)
	if v != 15 {
		t.Fatalf("reconstruct(4.5) = %v", v)
	}
	// Error bounded by eps between transmissions.
	for _, s := range samples {
		v, _ := ReconstructConstant(kept, s.T)
		if math.Abs(v-s.V) > 1+1e-9 {
			t.Fatalf("suppression error at %v: %v", s.T, math.Abs(v-s.V))
		}
	}
	if SuppressConstant(nil, 1) != nil {
		t.Fatal("empty suppression")
	}
}

func TestReconstructLinearEdges(t *testing.T) {
	if _, ok := ReconstructLinear(nil, 0); ok {
		t.Fatal("empty reconstruction")
	}
	kept := []Sample{{0, 1}, {10, 11}}
	if v, _ := ReconstructLinear(kept, -5); v != 1 {
		t.Fatal("clamp low")
	}
	if v, _ := ReconstructLinear(kept, 50); v != 11 {
		t.Fatal("clamp high")
	}
	if v, _ := ReconstructLinear(kept, 5); math.Abs(v-6) > 1e-9 {
		t.Fatalf("midpoint = %v", v)
	}
}

func TestCompressionRatio(t *testing.T) {
	if CompressionRatio(100, 10) != 10 {
		t.Fatal("ratio")
	}
	if !math.IsInf(CompressionRatio(100, 0), 1) {
		t.Fatal("zero kept")
	}
}

func TestLTCPropertyBound(t *testing.T) {
	f := func(raw []float64, epsRaw float64) bool {
		if len(raw) < 3 {
			return true
		}
		eps := 0.1 + math.Abs(math.Mod(epsRaw, 5))
		samples := make([]Sample, 0, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			samples = append(samples, Sample{T: float64(i), V: math.Mod(v, 1e6)})
		}
		kept := LTC(samples, eps)
		return MaxReconstructionError(samples, kept) <= eps+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
