package reduce

import (
	"math"
	"sync"

	"sidq/internal/trajectory"
)

// stackPool recycles the interval stack used by the iterative
// columnar Douglas-Peucker.
var stackPool = sync.Pool{New: func() any { return new([][2]int) }}

// DouglasPeuckerSEDCols is the columnar twin of DouglasPeuckerSED: the
// TD-TR simplifier over flat T/X/Y slices, with the recursion replaced
// by an explicit interval stack. The kept-point set is identical to
// the recursive AoS form — each interval is examined independently, so
// traversal order cannot change which points are kept — and the SED
// arithmetic is the same expression sequence, so the output is
// bit-identical (the goldens and the property tests pin it). dst's
// capacity is reused.
func DouglasPeuckerSEDCols(dst, c *trajectory.Columns, eps float64) {
	n := c.Len()
	dst.Reset()
	if n == 0 {
		return
	}
	ts, xs, ys := c.T, c.X, c.Y
	if n <= 2 || eps <= 0 {
		dst.Grow(n)
		for i := 0; i < n; i++ {
			dst.Append(ts[i], xs[i], ys[i])
		}
		return
	}
	keepP := getKeep(n)
	defer keepPool.Put(keepP)
	keep := *keepP
	keep[0], keep[n-1] = true, true
	stackP := stackPool.Get().(*[][2]int)
	stack := (*stackP)[:0]
	stack = append(stack, [2]int{0, n - 1})
	for len(stack) > 0 {
		iv := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		lo, hi := iv[0], iv[1]
		if hi-lo < 2 {
			continue
		}
		at, ax, ay := ts[lo], xs[lo], ys[lo]
		bt, bx, by := ts[hi], xs[hi], ys[hi]
		den := bt - at
		dbx, dby := bx-ax, by-ay
		worst, worstI := 0.0, -1
		if bt == at {
			// Degenerate chord: SED falls back to distance from a.
			for i := lo + 1; i < hi; i++ {
				if d := math.Hypot(xs[i]-ax, ys[i]-ay); d > worst {
					worst, worstI = d, i
				}
			}
		} else {
			for i := lo + 1; i < hi; i++ {
				f := (ts[i] - at) / den
				ex := ax + dbx*f
				ey := ay + dby*f
				if d := math.Hypot(xs[i]-ex, ys[i]-ey); d > worst {
					worst, worstI = d, i
				}
			}
		}
		if worst > eps {
			keep[worstI] = true
			stack = append(stack, [2]int{lo, worstI}, [2]int{worstI, hi})
		}
	}
	*stackP = stack[:0]
	stackPool.Put(stackP)
	dst.Grow(n)
	for i, k := range keep {
		if k {
			dst.Append(ts[i], xs[i], ys[i])
		}
	}
}
