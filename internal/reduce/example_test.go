package reduce_test

import (
	"fmt"

	"sidq/internal/geo"
	"sidq/internal/reduce"
	"sidq/internal/trajectory"
)

// ExampleDouglasPeuckerSED simplifies a zig-zag track under a 2 m SED
// bound: the small wiggles vanish, the corner survives.
func ExampleDouglasPeuckerSED() {
	var pts []trajectory.Point
	for i := 0; i <= 10; i++ {
		y := 0.0
		if i%2 == 1 {
			y = 0.5 // sub-bound wiggle
		}
		pts = append(pts, trajectory.Point{T: float64(i), Pos: geo.Pt(float64(i)*10, y)})
	}
	// A real corner at the end.
	pts = append(pts, trajectory.Point{T: 11, Pos: geo.Pt(100, 50)})
	tr := trajectory.New("zigzag", pts)

	simplified := reduce.DouglasPeuckerSED(tr, 2)
	fmt.Printf("%d -> %d points, max SED %.2f m\n",
		tr.Len(), simplified.Len(), reduce.VerifySED(tr, simplified))
	// Output:
	// 12 -> 3 points, max SED 0.50 m
}

// ExampleLTC compresses a slowly drifting sensor series with a hard
// reconstruction bound.
func ExampleLTC() {
	var samples []reduce.Sample
	for i := 0; i < 100; i++ {
		samples = append(samples, reduce.Sample{T: float64(i), V: 20 + float64(i)*0.01})
	}
	kept := reduce.LTC(samples, 0.5)
	fmt.Printf("%d -> %d samples, max error %.3f\n",
		len(samples), len(kept), reduce.MaxReconstructionError(samples, kept))
	// Output:
	// 100 -> 2 samples, max error 0.000
}
