// Package reduce implements the paper's §2.2.6 Data Reduction task
// family: trajectory compression (offline and online, raw and
// network-constrained) and STID reduction (lossless codecs, lossy
// error-bounded compression, prediction-based suppression).
//
// Error-bounded trajectory simplifiers guarantee a maximum synchronized
// Euclidean distance (SED) between the original points and the
// simplified trajectory; VerifySED checks the guarantee.
package reduce

import (
	"container/heap"
	"math"
	"sync"

	"sidq/internal/trajectory"
)

// keepPool recycles the keep-flag buffer DouglasPeuckerSED needs per
// call; compression sweeps run it across every trajectory at many
// epsilons, so the buffer is hot.
var keepPool = sync.Pool{New: func() any { return new([]bool) }}

func getKeep(n int) *[]bool {
	p := keepPool.Get().(*[]bool)
	if cap(*p) < n {
		*p = make([]bool, n)
	}
	*p = (*p)[:n]
	for i := range *p {
		(*p)[i] = false
	}
	return p
}

// DouglasPeuckerSED simplifies offline with the time-aware
// Douglas-Peucker variant (TD-TR): recursively keep the point with the
// largest SED until every discarded point is within eps meters of the
// kept chord. The first and last points are always kept.
func DouglasPeuckerSED(tr *trajectory.Trajectory, eps float64) *trajectory.Trajectory {
	n := tr.Len()
	out := &trajectory.Trajectory{ID: tr.ID}
	if n == 0 {
		return out
	}
	if n <= 2 || eps <= 0 {
		out.Points = append(out.Points, tr.Points...)
		return out
	}
	keepP := getKeep(n)
	defer keepPool.Put(keepP)
	keep := *keepP
	keep[0], keep[n-1] = true, true
	var rec func(lo, hi int)
	rec = func(lo, hi int) {
		if hi-lo < 2 {
			return
		}
		worst, worstI := 0.0, -1
		a, b := tr.Points[lo], tr.Points[hi]
		for i := lo + 1; i < hi; i++ {
			if d := trajectory.SED(a, b, tr.Points[i]); d > worst {
				worst, worstI = d, i
			}
		}
		if worst > eps {
			keep[worstI] = true
			rec(lo, worstI)
			rec(worstI, hi)
		}
	}
	rec(0, n-1)
	for i, k := range keep {
		if k {
			out.Points = append(out.Points, tr.Points[i])
		}
	}
	return out
}

// SlidingWindow simplifies online with the opening-window strategy:
// grow a window from the last kept anchor while every interior point
// stays within eps SED of the anchor-to-candidate chord; when the bound
// would break, keep the previous candidate and restart the window.
func SlidingWindow(tr *trajectory.Trajectory, eps float64) *trajectory.Trajectory {
	n := tr.Len()
	out := &trajectory.Trajectory{ID: tr.ID}
	if n == 0 {
		return out
	}
	if n <= 2 || eps <= 0 {
		out.Points = append(out.Points, tr.Points...)
		return out
	}
	out.Points = append(out.Points, tr.Points[0])
	anchor := 0
	for i := 2; i < n; i++ {
		if trajectory.MaxSED(tr, anchor, i) > eps {
			out.Points = append(out.Points, tr.Points[i-1])
			anchor = i - 1
		}
	}
	out.Points = append(out.Points, tr.Points[n-1])
	return out
}

// DeadReckoning simplifies online by transmitting a point only when the
// position extrapolated from the last transmitted point and velocity
// deviates from the actual position by more than eps. It is the
// classic location-update suppression protocol for tracking.
func DeadReckoning(tr *trajectory.Trajectory, eps float64) *trajectory.Trajectory {
	n := tr.Len()
	out := &trajectory.Trajectory{ID: tr.ID}
	if n == 0 {
		return out
	}
	if n <= 2 || eps <= 0 {
		out.Points = append(out.Points, tr.Points...)
		return out
	}
	out.Points = append(out.Points, tr.Points[0])
	lastIdx := 0
	var vx, vy float64
	if dt := tr.Points[1].T - tr.Points[0].T; dt > 0 {
		vx = (tr.Points[1].Pos.X - tr.Points[0].Pos.X) / dt
		vy = (tr.Points[1].Pos.Y - tr.Points[0].Pos.Y) / dt
	}
	for i := 1; i < n; i++ {
		last := tr.Points[lastIdx]
		dt := tr.Points[i].T - last.T
		predX := last.Pos.X + vx*dt
		predY := last.Pos.Y + vy*dt
		dx := tr.Points[i].Pos.X - predX
		dy := tr.Points[i].Pos.Y - predY
		if math.Hypot(dx, dy) > eps {
			out.Points = append(out.Points, tr.Points[i])
			if i > 0 {
				if d := tr.Points[i].T - tr.Points[i-1].T; d > 0 {
					vx = (tr.Points[i].Pos.X - tr.Points[i-1].Pos.X) / d
					vy = (tr.Points[i].Pos.Y - tr.Points[i-1].Pos.Y) / d
				}
			}
			lastIdx = i
		}
	}
	if out.Points[len(out.Points)-1].T != tr.Points[n-1].T {
		out.Points = append(out.Points, tr.Points[n-1])
	}
	return out
}

// squishItem is a buffered point with its removal priority.
type squishItem struct {
	idx      int // index into the original points
	nodeIdx  int // index into the node array
	priority float64
	heapPos  int
}

type squishHeap []*squishItem

func (h squishHeap) Len() int           { return len(h) }
func (h squishHeap) Less(i, j int) bool { return h[i].priority < h[j].priority }
func (h squishHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapPos = i
	h[j].heapPos = j
}
func (h *squishHeap) Push(x interface{}) {
	it := x.(*squishItem)
	it.heapPos = len(*h)
	*h = append(*h, it)
}
func (h *squishHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// SQUISH simplifies online with a bounded buffer (capacity points):
// when the buffer is full, the interior point whose removal introduces
// the least SED is dropped and its priority is inherited by its
// neighbors, following the SQUISH algorithm of Muckell et al.
func SQUISH(tr *trajectory.Trajectory, capacity int) *trajectory.Trajectory {
	n := tr.Len()
	out := &trajectory.Trajectory{ID: tr.ID}
	if capacity < 2 {
		capacity = 2
	}
	if n <= capacity {
		out.Points = append(out.Points, tr.Points...)
		return out
	}
	type node struct {
		item       *squishItem
		prev, next int // node indices, -1 when none, -2 when removed
		inherited  float64
	}
	nodes := make([]node, 0, n)
	h := &squishHeap{}
	setPriority := func(ni int) {
		nd := &nodes[ni]
		if nd.prev < 0 || nd.next < 0 {
			nd.item.priority = math.Inf(1) // endpoints never removed
		} else {
			a := tr.Points[nodes[nd.prev].item.idx]
			b := tr.Points[nodes[nd.next].item.idx]
			nd.item.priority = trajectory.SED(a, b, tr.Points[nd.item.idx]) + nd.inherited
		}
		heap.Fix(h, nd.item.heapPos)
	}
	live := 0
	lastNode := -1
	for i := 0; i < n; i++ {
		it := &squishItem{idx: i, priority: math.Inf(1), nodeIdx: len(nodes)}
		nodes = append(nodes, node{item: it, prev: lastNode, next: -1})
		if lastNode >= 0 {
			nodes[lastNode].next = it.nodeIdx
		}
		heap.Push(h, it)
		if lastNode >= 0 {
			setPriority(lastNode) // previous point now has a successor
		}
		lastNode = it.nodeIdx
		live++
		if live > capacity {
			victim := heap.Pop(h).(*squishItem)
			ri := victim.nodeIdx
			p, x := nodes[ri].prev, nodes[ri].next
			if p >= 0 {
				nodes[p].next = x
			}
			if x >= 0 {
				nodes[x].prev = p
			}
			if p >= 0 {
				nodes[p].inherited = math.Max(nodes[p].inherited, victim.priority)
				setPriority(p)
			}
			if x >= 0 {
				nodes[x].inherited = math.Max(nodes[x].inherited, victim.priority)
				setPriority(x)
			}
			nodes[ri].prev, nodes[ri].next = -2, -2
			live--
		}
	}
	for ni := range nodes {
		if nodes[ni].prev != -2 {
			out.Points = append(out.Points, tr.Points[nodes[ni].item.idx])
		}
	}
	return out
}
