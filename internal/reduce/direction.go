package reduce

import (
	"math"

	"sidq/internal/trajectory"
)

// DirectionPreserving simplifies a trajectory with a bounded
// direction error (the direction-based simplification family): a point
// is kept whenever dropping it would let the chord's heading deviate
// from some skipped segment's heading by more than maxAngle radians.
// Position error is not bounded — that is the point of the
// direction-preserving trade-off the literature contrasts with
// position-preserving (SED) methods.
func DirectionPreserving(tr *trajectory.Trajectory, maxAngle float64) *trajectory.Trajectory {
	n := tr.Len()
	out := &trajectory.Trajectory{ID: tr.ID}
	if n == 0 {
		return out
	}
	if n <= 2 || maxAngle <= 0 {
		out.Points = append(out.Points, tr.Points...)
		return out
	}
	out.Points = append(out.Points, tr.Points[0])
	anchor := 0
	for i := 2; i < n; i++ {
		if maxDirectionError(tr, anchor, i) > maxAngle {
			out.Points = append(out.Points, tr.Points[i-1])
			anchor = i - 1
		}
	}
	out.Points = append(out.Points, tr.Points[n-1])
	return out
}

// maxDirectionError returns the largest angular deviation between the
// chord lo->hi and the headings of the skipped original segments.
func maxDirectionError(tr *trajectory.Trajectory, lo, hi int) float64 {
	chord := tr.Points[lo].Pos.Bearing(tr.Points[hi].Pos)
	var worst float64
	for k := lo; k < hi; k++ {
		a, b := tr.Points[k].Pos, tr.Points[k+1].Pos
		if a == b {
			continue
		}
		if d := angleDiff(a.Bearing(b), chord); d > worst {
			worst = d
		}
	}
	return worst
}

// VerifyDirectionError returns the maximum angular deviation between
// each original segment's heading and the heading of the simplified
// chord covering it.
func VerifyDirectionError(original, simplified *trajectory.Trajectory) float64 {
	if simplified.Len() < 2 || original.Len() < 2 {
		return 0
	}
	var worst float64
	si := 1
	for k := 0; k+1 < original.Len(); k++ {
		a, b := original.Points[k], original.Points[k+1]
		if a.Pos == b.Pos {
			continue
		}
		mid := (a.T + b.T) / 2
		// Advance to the simplified chord covering the segment midpoint.
		for si < simplified.Len()-1 && simplified.Points[si].T < mid {
			si++
		}
		ca, cb := simplified.Points[si-1].Pos, simplified.Points[si].Pos
		if ca == cb {
			continue
		}
		if d := angleDiff(a.Pos.Bearing(b.Pos), ca.Bearing(cb)); d > worst {
			worst = d
		}
	}
	return worst
}

// angleDiff returns the absolute angular difference in [0, pi].
func angleDiff(a, b float64) float64 {
	d := math.Mod(a-b, 2*math.Pi)
	if d < -math.Pi {
		d += 2 * math.Pi
	}
	if d > math.Pi {
		d -= 2 * math.Pi
	}
	return math.Abs(d)
}
