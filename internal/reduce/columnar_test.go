package reduce

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"sidq/internal/geo"
	"sidq/internal/trajectory"
)

func randWalkTrack(rng *rand.Rand, n int) *trajectory.Trajectory {
	pts := make([]trajectory.Point, n)
	x, y, t := 0.0, 0.0, 0.0
	for i := range pts {
		x += rng.NormFloat64() * 5
		y += rng.NormFloat64() * 5
		if rng.Intn(12) != 0 { // keep some duplicate timestamps
			t += 1 + rng.Float64()
		}
		pts[i] = trajectory.Point{T: t, Pos: geo.Pt(x, y)}
	}
	return trajectory.New(fmt.Sprintf("w%d", n), pts)
}

// TestDouglasPeuckerSEDColsMatchesAoS pins the columnar iterative
// simplifier against the recursive AoS form bit for bit across random
// tracks, epsilons, and degenerate (equal-timestamp) chords.
func TestDouglasPeuckerSEDColsMatchesAoS(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	var c, dst trajectory.Columns
	for trial := 0; trial < 150; trial++ {
		tr := randWalkTrack(rng, rng.Intn(120))
		eps := []float64{0, 0.5, 2, 10, 50}[rng.Intn(5)]
		want := DouglasPeuckerSED(tr, eps)
		c.FromTrajectory(tr)
		DouglasPeuckerSEDCols(&dst, &c, eps)
		if dst.Len() != want.Len() {
			t.Fatalf("trial %d (eps=%v): kept %d points, AoS kept %d",
				trial, eps, dst.Len(), want.Len())
		}
		for i, p := range want.Points {
			got := dst.At(i)
			if math.Float64bits(got.T) != math.Float64bits(p.T) ||
				math.Float64bits(got.Pos.X) != math.Float64bits(p.Pos.X) ||
				math.Float64bits(got.Pos.Y) != math.Float64bits(p.Pos.Y) {
				t.Fatalf("trial %d (eps=%v): kept sample %d diverged", trial, eps, i)
			}
		}
	}
}

// TestDouglasPeuckerSEDColsReuseAllocFree pins the steady-state
// contract: warm destination columns plus pooled keep/stack scratch
// means zero allocations per simplification.
func TestDouglasPeuckerSEDColsReuseAllocFree(t *testing.T) {
	tr := randWalkTrack(rand.New(rand.NewSource(32)), 300)
	var c, dst trajectory.Columns
	c.FromTrajectory(tr)
	DouglasPeuckerSEDCols(&dst, &c, 5) // warm pools and dst
	allocs := testing.AllocsPerRun(30, func() {
		DouglasPeuckerSEDCols(&dst, &c, 5)
	})
	if allocs != 0 {
		t.Fatalf("warm DouglasPeuckerSEDCols allocated %.1f times/op, want 0", allocs)
	}
}
