package reduce

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Quantize converts float values to integers at the given step (e.g.
// 0.01 keeps two decimals). Quantization is the only lossy stage in
// front of the lossless integer codecs.
func Quantize(vals []float64, step float64) []int64 {
	if step <= 0 {
		step = 1
	}
	out := make([]int64, len(vals))
	for i, v := range vals {
		out[i] = int64(math.Round(v / step))
	}
	return out
}

// Dequantize inverts Quantize.
func Dequantize(qs []int64, step float64) []float64 {
	if step <= 0 {
		step = 1
	}
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = float64(q) * step
	}
	return out
}

// DeltaVarintEncode losslessly encodes an integer series as
// delta + zigzag varints — the baseline lossless codec for slowly
// varying IoT series.
func DeltaVarintEncode(vals []int64) []byte {
	buf := make([]byte, 0, len(vals)*2+8)
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(vals)))
	buf = append(buf, tmp[:n]...)
	prev := int64(0)
	for _, v := range vals {
		n := binary.PutVarint(tmp[:], v-prev)
		buf = append(buf, tmp[:n]...)
		prev = v
	}
	return buf
}

// DeltaVarintDecode inverts DeltaVarintEncode.
func DeltaVarintDecode(data []byte) ([]int64, error) {
	off := 0
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, fmt.Errorf("reduce: delta-varint header: %w", ErrCorrupt)
	}
	off += n
	if count > uint64(len(data))*10 {
		return nil, fmt.Errorf("reduce: implausible count %d: %w", count, ErrCorrupt)
	}
	out := make([]int64, 0, count)
	prev := int64(0)
	for i := uint64(0); i < count; i++ {
		d, n := binary.Varint(data[off:])
		if n <= 0 {
			return nil, fmt.Errorf("reduce: delta-varint value %d: %w", i, ErrCorrupt)
		}
		off += n
		prev += d
		out = append(out, prev)
	}
	return out, nil
}

// bitWriter writes individual bits MSB-first.
type bitWriter struct {
	buf []byte
	cur byte
	n   uint8
}

func (w *bitWriter) writeBit(b uint8) {
	w.cur = w.cur<<1 | (b & 1)
	w.n++
	if w.n == 8 {
		w.buf = append(w.buf, w.cur)
		w.cur, w.n = 0, 0
	}
}

func (w *bitWriter) writeBits(v uint64, bits uint8) {
	for i := int(bits) - 1; i >= 0; i-- {
		w.writeBit(uint8(v >> uint(i) & 1))
	}
}

func (w *bitWriter) finish() []byte {
	if w.n > 0 {
		w.buf = append(w.buf, w.cur<<(8-w.n))
	}
	return w.buf
}

// bitReader reads bits MSB-first.
type bitReader struct {
	data []byte
	pos  int // bit position
}

func (r *bitReader) readBit() (uint8, error) {
	byteIdx := r.pos >> 3
	if byteIdx >= len(r.data) {
		return 0, ErrCorrupt
	}
	b := r.data[byteIdx] >> (7 - uint(r.pos&7)) & 1
	r.pos++
	return b, nil
}

func (r *bitReader) readBits(bits uint8) (uint64, error) {
	var v uint64
	for i := uint8(0); i < bits; i++ {
		b, err := r.readBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
	}
	return v, nil
}

// RiceEncode encodes non-negative integers with Rice coding (Golomb
// with power-of-two parameter 2^k): quotient in unary, remainder in k
// bits. It is the codec of the phasor-angle lossless-compression work
// the paper cites; k should match the series' typical delta magnitude.
func RiceEncode(vals []uint64, k uint8) []byte {
	if k > 32 {
		k = 32
	}
	w := &bitWriter{}
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(vals)))
	pre := append([]byte{k}, hdr[:n]...)
	const escapeRun = 64 // no normal value emits this many unary ones
	for _, v := range vals {
		q := v >> k
		if q >= escapeRun {
			// Escape pathological quotients: a sentinel run of 64 ones,
			// the terminator, then the raw 64-bit value.
			for i := 0; i < escapeRun; i++ {
				w.writeBit(1)
			}
			w.writeBit(0)
			w.writeBits(v, 64)
			continue
		}
		for i := uint64(0); i < q; i++ {
			w.writeBit(1)
		}
		w.writeBit(0)
		w.writeBits(v&((1<<k)-1), k)
	}
	return append(pre, w.finish()...)
}

// RiceDecode inverts RiceEncode.
func RiceDecode(data []byte) ([]uint64, error) {
	if len(data) < 2 {
		return nil, fmt.Errorf("reduce: rice header: %w", ErrCorrupt)
	}
	k := data[0]
	if k > 32 {
		return nil, fmt.Errorf("reduce: rice parameter %d: %w", k, ErrCorrupt)
	}
	count, n := binary.Uvarint(data[1:])
	if n <= 0 {
		return nil, fmt.Errorf("reduce: rice count: %w", ErrCorrupt)
	}
	if count > uint64(len(data))*10 {
		return nil, fmt.Errorf("reduce: implausible rice count %d: %w", count, ErrCorrupt)
	}
	r := &bitReader{data: data[1+n:]}
	out := make([]uint64, 0, count)
	const escapeRun = 64
	for i := uint64(0); i < count; i++ {
		var q uint64
		escaped := false
		for {
			b, err := r.readBit()
			if err != nil {
				return nil, fmt.Errorf("reduce: rice unary at %d: %w", i, err)
			}
			if b == 0 {
				break
			}
			q++
			if q == escapeRun {
				// Escape: after the sentinel's terminator, the raw
				// 64-bit value follows.
				b2, err := r.readBit()
				if err != nil || b2 != 0 {
					return nil, fmt.Errorf("reduce: rice escape at %d: %w", i, ErrCorrupt)
				}
				raw, err := r.readBits(64)
				if err != nil {
					return nil, fmt.Errorf("reduce: rice escape payload at %d: %w", i, err)
				}
				out = append(out, raw)
				escaped = true
				break
			}
		}
		if escaped {
			continue
		}
		rem, err := r.readBits(k)
		if err != nil {
			return nil, fmt.Errorf("reduce: rice remainder at %d: %w", i, err)
		}
		out = append(out, q<<k|rem)
	}
	return out, nil
}

// ZigZag maps signed to unsigned integers preserving small magnitudes.
func ZigZag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// UnZigZag inverts ZigZag.
func UnZigZag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Sample is a timestamped scalar for value-series compression.
type Sample struct {
	T, V float64
}

// LTC compresses a value series online with the Lightweight Temporal
// Compression algorithm: it maintains the cone of lines from the last
// transmitted sample that stay within eps of every intervening sample,
// and emits a new (possibly value-adjusted) sample only when the cone
// collapses. The emitted value uses a slope clamped into the surviving
// cone, which guarantees the piecewise-linear reconstruction deviates
// from every original sample by at most eps.
func LTC(samples []Sample, eps float64) []Sample {
	n := len(samples)
	if n <= 2 || eps <= 0 {
		return append([]Sample(nil), samples...)
	}
	out := []Sample{samples[0]}
	anchor := samples[0]
	loSlope, hiSlope := math.Inf(-1), math.Inf(1)
	prev := samples[0]
	emit := func(at Sample) Sample {
		dt := at.T - anchor.T
		if dt <= 0 {
			return anchor
		}
		slope := (at.V - anchor.V) / dt
		if slope < loSlope {
			slope = loSlope
		}
		if slope > hiSlope {
			slope = hiSlope
		}
		e := Sample{T: at.T, V: anchor.V + slope*dt}
		out = append(out, e)
		return e
	}
	for i := 1; i < n; i++ {
		s := samples[i]
		dt := s.T - anchor.T
		if dt <= 0 {
			prev = s
			continue
		}
		lo := (s.V - eps - anchor.V) / dt
		hi := (s.V + eps - anchor.V) / dt
		nlo := math.Max(loSlope, lo)
		nhi := math.Min(hiSlope, hi)
		if nlo > nhi {
			// Cone collapsed: emit at the previous sample time with a
			// cone-feasible slope and restart from the emitted point.
			anchor = emit(prev)
			dt = s.T - anchor.T
			if dt <= 0 {
				loSlope, hiSlope = math.Inf(-1), math.Inf(1)
			} else {
				loSlope = (s.V - eps - anchor.V) / dt
				hiSlope = (s.V + eps - anchor.V) / dt
			}
		} else {
			loSlope, hiSlope = nlo, nhi
		}
		prev = s
	}
	if out[len(out)-1].T != samples[n-1].T {
		emit(samples[n-1])
	}
	return out
}

// ReconstructLinear evaluates the piecewise-linear reconstruction of
// kept samples at time t (clamped to the endpoints).
func ReconstructLinear(kept []Sample, t float64) (float64, bool) {
	if len(kept) == 0 {
		return 0, false
	}
	if t <= kept[0].T {
		return kept[0].V, true
	}
	if t >= kept[len(kept)-1].T {
		return kept[len(kept)-1].V, true
	}
	for i := 1; i < len(kept); i++ {
		if t <= kept[i].T {
			a, b := kept[i-1], kept[i]
			if b.T == a.T {
				return b.V, true
			}
			f := (t - a.T) / (b.T - a.T)
			return a.V + (b.V-a.V)*f, true
		}
	}
	return kept[len(kept)-1].V, true
}

// MaxReconstructionError returns the worst |original - reconstruction|
// over the samples.
func MaxReconstructionError(original, kept []Sample) float64 {
	var worst float64
	for _, s := range original {
		v, ok := ReconstructLinear(kept, s.T)
		if !ok {
			return math.Inf(1)
		}
		if d := math.Abs(v - s.V); d > worst {
			worst = d
		}
	}
	return worst
}

// SuppressConstant performs prediction-based reduction with a
// last-value predictor: a sample is transmitted only when it deviates
// from the last transmitted value by more than eps. The receiver holds
// the last value. Returns the transmitted samples.
func SuppressConstant(samples []Sample, eps float64) []Sample {
	if len(samples) == 0 {
		return nil
	}
	out := []Sample{samples[0]}
	last := samples[0].V
	for _, s := range samples[1:] {
		if math.Abs(s.V-last) > eps {
			out = append(out, s)
			last = s.V
		}
	}
	return out
}

// ReconstructConstant evaluates the last-value-hold reconstruction at
// time t.
func ReconstructConstant(kept []Sample, t float64) (float64, bool) {
	if len(kept) == 0 {
		return 0, false
	}
	v := kept[0].V
	for _, s := range kept {
		if s.T > t {
			break
		}
		v = s.V
	}
	return v, true
}
