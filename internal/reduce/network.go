package reduce

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"sidq/internal/roadnet"
	"sidq/internal/trajectory"
)

// ErrCorrupt is returned when an encoded payload cannot be decoded.
var ErrCorrupt = errors.New("reduce: corrupt payload")

// VerifySED returns the maximum SED of the original points against the
// simplified trajectory's linear interpolation — the bound an
// error-bounded simplifier must respect.
func VerifySED(original, simplified *trajectory.Trajectory) float64 {
	var worst float64
	for _, p := range original.Points {
		pos, ok := simplified.LocationAt(p.T)
		if !ok {
			return math.Inf(1)
		}
		if d := p.Pos.Dist(pos); d > worst {
			worst = d
		}
	}
	return worst
}

// CompressionRatio returns original size / compressed size for point
// counts (both at the same bytes-per-point).
func CompressionRatio(originalPoints, keptPoints int) float64 {
	if keptPoints <= 0 {
		return math.Inf(1)
	}
	return float64(originalPoints) / float64(keptPoints)
}

// NetworkTrip is a network-constrained trajectory: the edge route plus
// the departure time and per-edge arrival times.
type NetworkTrip struct {
	Route []roadnet.EdgeID
	Start float64
	Times []float64 // arrival time at the end of each route edge
}

// EncodeNetworkTrip serializes a map-matched trip compactly: edge ids
// are delta-encoded with varints (consecutive road edges have nearby
// ids in practice), and arrival times are quantized to timeQuantum
// seconds and delta-encoded. This is the network-constrained
// compression scheme: geometry is not stored at all because the road
// network supplies it.
func EncodeNetworkTrip(t NetworkTrip, timeQuantum float64) []byte {
	if timeQuantum <= 0 {
		timeQuantum = 1
	}
	buf := make([]byte, 0, 16+5*len(t.Route))
	var tmp [binary.MaxVarintLen64]byte
	put := func(v int64) {
		n := binary.PutVarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	putU := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	putU(uint64(len(t.Route)))
	putU(math.Float64bits(t.Start))
	putU(math.Float64bits(timeQuantum))
	prevEdge := int64(0)
	for _, e := range t.Route {
		put(int64(e) - prevEdge)
		prevEdge = int64(e)
	}
	prevQ := int64(math.Round(t.Start / timeQuantum))
	for _, tm := range t.Times {
		q := int64(math.Round(tm / timeQuantum))
		put(q - prevQ)
		prevQ = q
	}
	return buf
}

// DecodeNetworkTrip inverts EncodeNetworkTrip. Arrival times are
// recovered to timeQuantum precision.
func DecodeNetworkTrip(data []byte) (NetworkTrip, error) {
	var t NetworkTrip
	off := 0
	readU := func() (uint64, error) {
		v, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return 0, fmt.Errorf("reduce: uvarint at %d: %w", off, ErrCorrupt)
		}
		off += n
		return v, nil
	}
	read := func() (int64, error) {
		v, n := binary.Varint(data[off:])
		if n <= 0 {
			return 0, fmt.Errorf("reduce: varint at %d: %w", off, ErrCorrupt)
		}
		off += n
		return v, nil
	}
	count, err := readU()
	if err != nil {
		return t, err
	}
	if count > uint64(len(data))*2 {
		return t, fmt.Errorf("reduce: implausible route length %d: %w", count, ErrCorrupt)
	}
	startBits, err := readU()
	if err != nil {
		return t, err
	}
	t.Start = math.Float64frombits(startBits)
	quantBits, err := readU()
	if err != nil {
		return t, err
	}
	quantum := math.Float64frombits(quantBits)
	prevEdge := int64(0)
	for i := uint64(0); i < count; i++ {
		d, err := read()
		if err != nil {
			return t, err
		}
		prevEdge += d
		t.Route = append(t.Route, roadnet.EdgeID(prevEdge))
	}
	prevQ := int64(math.Round(t.Start / quantum))
	for i := uint64(0); i < count; i++ {
		d, err := read()
		if err != nil {
			return t, err
		}
		prevQ += d
		t.Times = append(t.Times, float64(prevQ)*quantum)
	}
	return t, nil
}

// RawTripBytes returns the size of the naive encoding a network trip
// replaces: the full sampled trajectory at 24 bytes per point
// (float64 t, x, y).
func RawTripBytes(points int) int { return 24 * points }
