package reduce

import (
	"math"
	"testing"
	"testing/quick"

	"sidq/internal/geo"
	"sidq/internal/roadnet"
	"sidq/internal/trajectory"
)

// TestDeltaVarintRoundTripProperty fuzzes the lossless integer codec.
func TestDeltaVarintRoundTripProperty(t *testing.T) {
	f := func(vals []int64) bool {
		back, err := DeltaVarintDecode(DeltaVarintEncode(vals))
		if err != nil {
			return false
		}
		if len(back) != len(vals) {
			return false
		}
		for i := range vals {
			if back[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestRiceRoundTripProperty fuzzes the Rice codec across parameters,
// including the escape path for huge values.
func TestRiceRoundTripProperty(t *testing.T) {
	f := func(vals []uint64, kRaw uint8) bool {
		k := kRaw % 33
		// Bound magnitudes so unary runs stay reasonable except for a
		// deliberate huge tail value exercising the escape.
		bounded := make([]uint64, 0, len(vals)+1)
		for _, v := range vals {
			bounded = append(bounded, v%(1<<24))
		}
		bounded = append(bounded, math.MaxUint64)
		back, err := RiceDecode(RiceEncode(bounded, k))
		if err != nil {
			return false
		}
		if len(back) != len(bounded) {
			return false
		}
		for i := range bounded {
			if back[i] != bounded[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestNetworkTripRoundTripProperty fuzzes the route codec.
func TestNetworkTripRoundTripProperty(t *testing.T) {
	f := func(edgeDeltas []int16, startRaw float64) bool {
		if len(edgeDeltas) == 0 {
			return true
		}
		start := math.Mod(math.Abs(startRaw), 1e6)
		if math.IsNaN(start) {
			start = 0
		}
		nt := NetworkTrip{Start: start}
		cur := int64(1000000) // keep ids positive
		tm := start
		for _, d := range edgeDeltas {
			cur += int64(d)
			tm += 1 + math.Abs(float64(d%50))
			nt.Route = append(nt.Route, roadnet.EdgeID(cur))
			nt.Times = append(nt.Times, tm)
		}
		back, err := DecodeNetworkTrip(EncodeNetworkTrip(nt, 0.5))
		if err != nil {
			return false
		}
		if len(back.Route) != len(nt.Route) {
			return false
		}
		for i := range nt.Route {
			if back.Route[i] != nt.Route[i] {
				return false
			}
			if math.Abs(back.Times[i]-nt.Times[i]) > 0.25+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestSimplifierEndpointsProperty: every simplifier keeps the first and
// last points of arbitrary (time-sorted) trajectories.
func TestSimplifierEndpointsProperty(t *testing.T) {
	f := func(coords []float64, epsRaw float64) bool {
		if len(coords) < 6 {
			return true
		}
		eps := 0.5 + math.Abs(math.Mod(epsRaw, 50))
		var pts []trajectory.Point
		for i := 0; i+1 < len(coords); i += 2 {
			x := math.Mod(coords[i], 1e4)
			y := math.Mod(coords[i+1], 1e4)
			if math.IsNaN(x) || math.IsNaN(y) {
				x, y = 0, 0
			}
			pts = append(pts, trajectory.Point{T: float64(len(pts)), Pos: geo.Pt(x, y)})
		}
		tr := trajectory.New("p", pts)
		first, last := tr.Points[0], tr.Points[tr.Len()-1]
		for _, simp := range []*trajectory.Trajectory{
			DouglasPeuckerSED(tr, eps),
			SlidingWindow(tr, eps),
			DeadReckoning(tr, eps),
			SQUISH(tr, 4),
			DirectionPreserving(tr, 0.5),
		} {
			if simp.Len() < 2 {
				return false
			}
			if simp.Points[0] != first || simp.Points[simp.Len()-1] != last {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestDPBoundProperty: the SED bound holds on arbitrary inputs.
func TestDPBoundProperty(t *testing.T) {
	f := func(coords []float64, epsRaw float64) bool {
		if len(coords) < 8 {
			return true
		}
		eps := 0.5 + math.Abs(math.Mod(epsRaw, 100))
		var pts []trajectory.Point
		for i := 0; i+1 < len(coords); i += 2 {
			x := math.Mod(coords[i], 1e4)
			y := math.Mod(coords[i+1], 1e4)
			if math.IsNaN(x) || math.IsNaN(y) {
				x, y = 0, 0
			}
			pts = append(pts, trajectory.Point{T: float64(len(pts)), Pos: geo.Pt(x, y)})
		}
		tr := trajectory.New("p", pts)
		simp := DouglasPeuckerSED(tr, eps)
		return VerifySED(tr, simp) <= eps+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
