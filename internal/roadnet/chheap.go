package roadnet

// chHeap is the 4-ary min-heap the CH searches use. It is separate
// from nodeHeap on purpose: nodeHeap replicates container/heap's exact
// comparison and swap sequence so the legacy searches keep their
// golden pop order, while CH results are tie-break independent (the
// returned distance is re-accumulated along the unpacked path), so its
// heap is free to trade that contract for speed — a 4-ary layout
// halves the sift depth and keeps all children of a node within one
// cache line, and sifting moves a hole instead of swapping pairs.
type chHeap struct {
	items []heapItem
}

func (h *chHeap) reset() { h.items = h.items[:0] }

func (h *chHeap) len() int { return len(h.items) }

func (h *chHeap) push(node int32, prio float64) {
	h.items = append(h.items, heapItem{})
	j := len(h.items) - 1
	for j > 0 {
		i := (j - 1) >> 2
		if h.items[i].prio <= prio {
			break
		}
		h.items[j] = h.items[i]
		j = i
	}
	h.items[j] = heapItem{node: node, prio: prio}
}

func (h *chHeap) pop() heapItem {
	top := h.items[0]
	n := len(h.items) - 1
	last := h.items[n]
	h.items = h.items[:n]
	if n > 0 {
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			end := c + 4
			if end > n {
				end = n
			}
			m := c
			for k := c + 1; k < end; k++ {
				if h.items[k].prio < h.items[m].prio {
					m = k
				}
			}
			if h.items[m].prio >= last.prio {
				break
			}
			h.items[i] = h.items[m]
			i = m
		}
		h.items[i] = last
	}
	return top
}
