package roadnet

import (
	"sync"
	"sync/atomic"
)

// RouteCache is a sharded LRU cache of node-pair network distances —
// the (edge-head, edge-tail) routing core that map matching recomputes
// constantly. Map matching decomposes every snap-to-snap distance into
//
//	(1-ta)*len(ea) + d(ea.To, eb.From) + tb*len(eb)
//
// where only the middle term needs a graph search; the affine parameter
// terms are recomputed exactly per query. Caching d(u, v) therefore
// buckets all parameter positions on an edge pair into one entry
// without ever approximating a result.
//
// The cache is safe for concurrent use: keys are sharded across
// independently locked LRU lists, and getOrCompute de-duplicates
// concurrent misses for the same key singleflight-style, so a stampede
// of workers matching similar trajectories performs each search once.
// "No path" results are cached too (negative caching), which matters on
// directed grids where many candidate pairs are mutually unreachable.
type RouteCache struct {
	shards [cacheShards]cacheShard
	hits   atomic.Uint64
	misses atomic.Uint64
	dedups atomic.Uint64
}

const cacheShards = 16

type cacheKey struct{ u, v int32 }

type cacheEntry struct {
	key        cacheKey
	dist       float64
	ok         bool // false = definitively no path
	prev, next *cacheEntry
}

type cacheShard struct {
	mu       sync.Mutex
	m        map[cacheKey]*cacheEntry
	inflight map[cacheKey]*cacheFlight
	head     *cacheEntry // most recently used
	tail     *cacheEntry // least recently used
	cap      int
}

type cacheFlight struct {
	done chan struct{}
	dist float64
	ok   bool
}

// NewRouteCache returns a cache holding up to capacity node-pair
// distances (split across shards; capacity < shard count is rounded
// up to one entry per shard).
func NewRouteCache(capacity int) *RouteCache {
	c := &RouteCache{}
	per := capacity / cacheShards
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i].m = make(map[cacheKey]*cacheEntry)
		c.shards[i].inflight = make(map[cacheKey]*cacheFlight)
		c.shards[i].cap = per
	}
	return c
}

// Hits returns the number of cache hits served.
func (c *RouteCache) Hits() uint64 { return c.hits.Load() }

// Misses returns the number of lookups that missed.
func (c *RouteCache) Misses() uint64 { return c.misses.Load() }

// Dedups returns the number of getOrCompute calls that joined an
// in-flight computation instead of searching (singleflight joins).
// Dedups are counted as hits too: the caller's search was avoided.
func (c *RouteCache) Dedups() uint64 { return c.dedups.Load() }

// Len returns the current number of cached entries.
func (c *RouteCache) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += len(c.shards[i].m)
		c.shards[i].mu.Unlock()
	}
	return n
}

func (c *RouteCache) shard(k cacheKey) *cacheShard {
	// FNV-1a over the two node ids.
	h := uint32(2166136261)
	h = (h ^ uint32(k.u)) * 16777619
	h = (h ^ uint32(k.v)) * 16777619
	return &c.shards[h%cacheShards]
}

// get looks up d(u, v). hit reports whether the pair was cached; ok
// reports whether a route exists (false = cached "no path").
func (c *RouteCache) get(u, v int32) (d float64, ok, hit bool) {
	k := cacheKey{u, v}
	s := c.shard(k)
	s.mu.Lock()
	e, found := s.m[k]
	if found {
		s.moveToFront(e)
		d, ok = e.dist, e.ok
	}
	s.mu.Unlock()
	if found {
		obsAdd(&c.hits, &pkgObs.cacheHits, 1)
		return d, ok, true
	}
	obsAdd(&c.misses, &pkgObs.cacheMisses, 1)
	return 0, false, false
}

// put stores d(u, v); ok=false records a definitive "no path".
func (c *RouteCache) put(u, v int32, d float64, ok bool) {
	k := cacheKey{u, v}
	s := c.shard(k)
	s.mu.Lock()
	s.store(k, d, ok)
	s.mu.Unlock()
}

// getOrCompute returns the cached d(u, v) or computes it exactly once
// even under concurrent callers: the first miss runs fn while later
// callers for the same key wait on its result instead of repeating the
// search.
func (c *RouteCache) getOrCompute(u, v int32, fn func() (float64, bool)) (float64, bool) {
	k := cacheKey{u, v}
	s := c.shard(k)
	for {
		s.mu.Lock()
		if e, found := s.m[k]; found {
			s.moveToFront(e)
			d, ok := e.dist, e.ok
			s.mu.Unlock()
			obsAdd(&c.hits, &pkgObs.cacheHits, 1)
			return d, ok
		}
		if f, running := s.inflight[k]; running {
			s.mu.Unlock()
			obsAdd(&c.hits, &pkgObs.cacheHits, 1)
			obsAdd(&c.dedups, &pkgObs.cacheDedups, 1)
			<-f.done
			return f.dist, f.ok
		}
		f := &cacheFlight{done: make(chan struct{})}
		s.inflight[k] = f
		s.mu.Unlock()
		obsAdd(&c.misses, &pkgObs.cacheMisses, 1)

		f.dist, f.ok = fn()
		s.mu.Lock()
		s.store(k, f.dist, f.ok)
		delete(s.inflight, k)
		s.mu.Unlock()
		close(f.done)
		return f.dist, f.ok
	}
}

// store inserts or refreshes an entry, evicting the LRU tail when the
// shard is full. Caller holds s.mu.
func (s *cacheShard) store(k cacheKey, d float64, ok bool) {
	if e, found := s.m[k]; found {
		e.dist, e.ok = d, ok
		s.moveToFront(e)
		return
	}
	if len(s.m) >= s.cap {
		lru := s.tail
		if lru != nil {
			s.unlink(lru)
			delete(s.m, lru.key)
		}
	}
	e := &cacheEntry{key: k, dist: d, ok: ok}
	s.m[k] = e
	s.pushFront(e)
}

func (s *cacheShard) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *cacheShard) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *cacheShard) moveToFront(e *cacheEntry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}
