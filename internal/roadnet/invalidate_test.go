package roadnet

// Stale-shortcut bug guard: a graph mutation must invalidate the
// compiled engine as a unit — CSR, ALT tables, contraction hierarchy,
// and route cache together. A CH rebuilt without the cache (or vice
// versa) would serve distances from a stale road network: shortcuts
// spanning edges that no longer dominate, or cached routes missing a
// newly added bypass.

import (
	"math"
	"testing"

	"sidq/internal/geo"
)

func TestMutationInvalidatesCHAndRouteCacheTogether(t *testing.T) {
	forceCHAuto(t)
	g := GridCity(GridCityOptions{NX: 8, NY: 8, Seed: 21}) // 64 nodes: ALT + CH active
	e1 := g.Engine()
	if !e1.HasCH() {
		t.Fatal("seed graph built no hierarchy")
	}
	a, _ := g.NodeAt(gridCorner(0, 0))
	b, _ := g.NodeAt(gridCorner(7, 7))

	// Warm the old engine: a CH distance and a cached route.
	before, err := e1.Dist(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e1.NetworkDist(EdgeID(0), 0.5, EdgeID(g.NumEdges()-1), 0.5); err != nil {
		t.Fatal(err)
	}
	if e1.Cache().Len() == 0 {
		t.Fatal("route cache unexpectedly empty after NetworkDist")
	}

	// Mutate: a highway-style bypass straight across the grid through a
	// new midpoint node, far shorter than any street route.
	mid := g.AddNode(geo.Pt(350, 350))
	g.AddBidirectional(a, mid, 30)
	g.AddBidirectional(mid, b, 30)

	e2 := g.Engine()
	if e2 == e1 {
		t.Fatal("Engine() returned the stale compiled engine after mutation")
	}
	if !e2.HasCH() {
		t.Fatal("rebuilt engine has no hierarchy")
	}
	if e2.Cache() == e1.Cache() {
		t.Fatal("rebuilt engine kept the stale route cache")
	}
	if e2.Cache().Len() != 0 {
		t.Fatalf("rebuilt route cache has %d stale entries, want 0", e2.Cache().Len())
	}

	// The rebuilt hierarchy must see the bypass: exact agreement with a
	// reference Dijkstra on the mutated graph, and strictly shorter than
	// the pre-mutation distance.
	ref := refDijkstra(g, a)
	after, err := e2.CHDist(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if after != ref[b] {
		t.Fatalf("post-mutation CHDist = %v, reference %v", after, ref[b])
	}
	if !(after < before) {
		t.Fatalf("bypass did not shorten the route: before %v, after %v", before, after)
	}

	// One-to-many and the cached-route path agree on the new graph too.
	out := make([]float64, 1)
	e2.CHManyDist(a, []NodeID{b}, math.Inf(1), out)
	if out[0] != ref[b] {
		t.Fatalf("post-mutation CHManyDist = %v, reference %v", out[0], ref[b])
	}

	// The old engine snapshot stays internally consistent (build-then-
	// query contract): it still answers with the old graph's distances.
	stale, err := e1.Dist(a, b)
	if err != nil || stale != before {
		t.Fatalf("stale engine answer changed: (%v, %v), want %v", stale, err, before)
	}
}

// TestAddNodeAloneInvalidates pins that node insertion alone (no new
// edges yet) already drops the compiled engine — the CSR's node count
// is part of the snapshot.
func TestAddNodeAloneInvalidates(t *testing.T) {
	g := GridCity(GridCityOptions{NX: 8, NY: 8, Seed: 3})
	e1 := g.Engine()
	g.AddNode(geo.Pt(1000, 1000))
	if g.Engine() == e1 {
		t.Fatal("AddNode did not invalidate the compiled engine")
	}
	if got, want := g.Engine().NumNodes(), g.NumNodes(); got != want {
		t.Fatalf("rebuilt engine has %d nodes, want %d", got, want)
	}
}
