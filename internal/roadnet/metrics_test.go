package roadnet

import (
	"math"
	"runtime"
	"strings"
	"sync"
	"testing"

	"sidq/internal/geo"
	"sidq/internal/obs"
)

func TestEngineStatsCountQueries(t *testing.T) {
	forceCHAuto(t)
	g := GridCity(GridCityOptions{NX: 8, NY: 8, Seed: 3}) // 64 nodes: ALT + CH active
	e := g.Engine()
	a, _ := g.NodeAt(gridCorner(0, 0))
	b, _ := g.NodeAt(gridCorner(7, 7))

	if _, err := e.ShortestPath(a, b); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AStar(a, b); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Dist(a, b); err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 2)
	e.ManyDist(a, []NodeID{a, b}, math.Inf(1), out)

	st := e.Stats()
	if st.Dijkstra != 1 {
		t.Errorf("Dijkstra = %d, want 1", st.Dijkstra)
	}
	if st.AStarALT != 1 || st.AStarEuclid != 0 {
		t.Errorf("AStarALT = %d, AStarEuclid = %d, want 1, 0", st.AStarALT, st.AStarEuclid)
	}
	if st.CHDist != 1 { // Dist is served by the hierarchy here
		t.Errorf("CHDist = %d, want 1", st.CHDist)
	}
	if st.CHMany != 1 { // so is ManyDist
		t.Errorf("CHMany = %d, want 1", st.CHMany)
	}
	if st.ManySweeps != 0 { // the flat sweep is the fallback only
		t.Errorf("ManySweeps = %d, want 0", st.ManySweeps)
	}
	if st.CHShortcuts <= 0 {
		t.Errorf("CHShortcuts = %d, want > 0", st.CHShortcuts)
	}
	if st.CHBuildNs <= 0 {
		t.Errorf("CHBuildNs = %d, want > 0", st.CHBuildNs)
	}
	if st.HeapPops == 0 {
		t.Error("HeapPops = 0, want > 0")
	}
}

func TestEngineStatsFlatFallbackCounters(t *testing.T) {
	g := GridCity(GridCityOptions{NX: 3, NY: 3, Seed: 1}) // 9 nodes: no CH
	e := g.Engine()
	if e.HasCH() {
		t.Fatal("9-node graph unexpectedly built a hierarchy")
	}
	a, _ := g.NodeAt(gridCorner(0, 0))
	b, _ := g.NodeAt(gridCorner(2, 2))
	if _, err := e.Dist(a, b); err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 1)
	e.ManyDist(a, []NodeID{b}, math.Inf(1), out)
	st := e.Stats()
	if st.ManySweeps != 2 { // Dist + ManyDist both fall back to the flat sweep
		t.Errorf("ManySweeps = %d, want 2", st.ManySweeps)
	}
	if st.CHDist != 0 || st.CHMany != 0 {
		t.Errorf("CHDist = %d, CHMany = %d, want 0, 0", st.CHDist, st.CHMany)
	}
	if st.CHShortcuts != 0 || st.CHBuildNs != 0 {
		t.Errorf("CHShortcuts = %d, CHBuildNs = %d, want 0, 0", st.CHShortcuts, st.CHBuildNs)
	}
}

func TestEngineStatsEuclidFallback(t *testing.T) {
	g := GridCity(GridCityOptions{NX: 3, NY: 3, Seed: 1}) // 9 nodes < altMinNodes
	e := g.Engine()
	a, _ := g.NodeAt(gridCorner(0, 0))
	b, _ := g.NodeAt(gridCorner(2, 2))
	if _, err := e.AStar(a, b); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.AStarEuclid != 1 || st.AStarALT != 0 {
		t.Errorf("AStarEuclid = %d, AStarALT = %d, want 1, 0", st.AStarEuclid, st.AStarALT)
	}
}

func TestRouteCacheDedups(t *testing.T) {
	c := NewRouteCache(64)
	const waiters = 8
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.getOrCompute(1, 2, func() (float64, bool) {
				<-gate // hold the flight open so others must join it
				return 42, true
			})
		}()
	}
	// The flight cannot finish before gate closes, so waiting for the
	// first dedup guarantees at least one goroutine joined in-flight.
	for c.Dedups() == 0 {
		runtime.Gosched()
	}
	close(gate)
	wg.Wait()
	if got := c.Misses(); got != 1 {
		t.Errorf("misses = %d, want 1 (one compute)", got)
	}
	if got := c.Hits(); got != waiters-1 {
		t.Errorf("hits = %d, want %d (joins and late arrivals both hit)", got, waiters-1)
	}
	if c.Dedups() == 0 {
		t.Error("dedups = 0, want at least one singleflight join")
	}
}

func TestInstrumentToExposesRoadnetFamilies(t *testing.T) {
	reg := obs.NewRegistry()
	InstrumentTo(reg)

	g := GridCity(GridCityOptions{NX: 8, NY: 8, Seed: 3})
	e := g.Engine()
	a, _ := g.NodeAt(gridCorner(0, 0))
	b, _ := g.NodeAt(gridCorner(7, 7))
	if _, err := e.ShortestPath(a, b); err != nil {
		t.Fatal(err)
	}
	if _, err := e.NetworkDist(0, 0.5, 1, 0.5); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	expo := sb.String()
	for _, fam := range []string{
		"sidq_roadnet_dijkstra_total",
		"sidq_roadnet_astar_alt_total",
		"sidq_roadnet_heap_pops_total",
		"sidq_roadnet_route_cache_hits_total",
		"sidq_roadnet_route_cache_misses_total",
		"sidq_roadnet_route_cache_dedups_total",
	} {
		if !strings.Contains(expo, "# TYPE "+fam+" counter") {
			t.Errorf("exposition missing %s", fam)
		}
	}
	if !strings.Contains(expo, "sidq_roadnet_route_cache_misses_total 1") {
		t.Errorf("expected one cache miss in exposition:\n%s", expo)
	}
}

// gridCorner maps grid coordinates to the default 100m GridCity spacing.
func gridCorner(x, y float64) geo.Point { return geo.Pt(x*100, y*100) }
