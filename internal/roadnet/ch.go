package roadnet

// Contraction hierarchies (CH) preprocessing. Nodes are contracted one
// by one in importance order; contracting node v inserts shortcut arcs
// u -> w (for uncontracted neighbors u, w) whenever the path u -> v -> w
// is not dominated by a witness path that avoids v. The contraction
// order becomes a rank, and the surviving arcs — originals plus
// shortcuts — are split into an upward CSR (tail rank < head rank,
// relaxed by the forward search) and a downward CSR keyed by the lower
// endpoint (relaxed by the backward search). Every shortest path in the
// original graph is then representable as an "up-down" path, so a
// bidirectional Dijkstra restricted to the two upward graphs visits a
// tiny fraction of the nodes a flat search would.
//
// # Exactness
//
// Shortcut weights are float64 sums of their constituent arc weights,
// which makes them associativity-sensitive: (a+b)+c need not equal the
// left-to-right accumulation Dijkstra performs along the unpacked
// path. The query side therefore uses arc weights only to ORDER the
// search; the distance it returns is recomputed by unpacking the
// winning up-down path into original edge ids and re-accumulating
// left-to-right from the source (chAccum). That is exactly the
// arithmetic the flat Dijkstra performs along the same path, so CH
// distances are bit-identical to ShortestPath/ManyDist results — the
// property sweep in ch_test.go pins this over hundreds of random
// graphs, and the map-match goldens pin it end to end.
//
// Node order: priority = edgeDifference + contractedNeighbors, served
// from a lazy-update queue (recompute on pop; reinsert if the fresh
// priority no longer wins). Witness searches are settle-capped — a
// capped search can only miss witnesses, which adds a redundant
// shortcut but never an incorrect one.

import (
	"math"
	"runtime"
	"sync"
	"time"
)

const (
	// chMinNodes gates CH preprocessing the same way altMinNodes gates
	// ALT: tiny graphs search faster flat than through a hierarchy.
	chMinNodes = 32
	// Witness-search settle caps. Larger values find more witnesses
	// (fewer shortcuts, slower build); smaller values build faster with
	// denser upward graphs. Priority simulation runs far more often
	// than contraction and only steers the order, so it gets the
	// cheaper cap; the capped search can only ADD redundant shortcuts,
	// never wrong ones.
	chWitnessSettlesSim      = 24
	chWitnessSettlesContract = 64
	// chParallelOrderNodes gates the parallel initial-priority pass:
	// below it, goroutine startup costs more than it saves.
	chParallelOrderNodes = 1 << 15
)

// chAutoNodes gates *automatic* CH preprocessing in newEngine. CH
// build cost is front-loaded (~1ms even at 100 nodes, dominated by
// witness searches) and only amortizes on graphs that are large or
// long-lived; small graphs answer quickly through ALT + the route
// cache anyway, and workloads that rebuild small graphs frequently
// (the E2 experiment builds a fresh city per iteration) must not pay
// preprocessing on every build. Tests that pin CH semantics on small
// graphs lower this to chMinNodes via forceCHAuto. A variable, not a
// const, for exactly that reason.
var chAutoNodes = 4096

// chData is the compiled hierarchy: contraction ranks, the arc store
// (originals + shortcuts, immutable after build), and the two CSR
// views the query searches relax. Safe for concurrent readers.
type chData struct {
	rank []int32 // node -> contraction order (0 contracted first)

	// Arc store. Arcs are append-only: a parallel arc superseded by a
	// cheaper shortcut is marked dead but its record survives, so
	// left/right child references of later shortcuts stay valid for
	// unpacking.
	aFrom, aTo    []int32
	aW            []float64
	aMid          []int32 // contracted middle node; -1 = original edge
	aLeft, aRight []int32 // child arc ids (shortcuts only)
	aEid          []int32 // original edge id (originals only)

	// Query CSR views, indexed by RANK rather than node id: node ids
	// are permuted through rank[] on entry, and arc endpoints hold
	// ranks. Every query's search space lives near the top of the
	// hierarchy, so rank-ordering clusters the hot nodes of ALL queries
	// into the same few cache lines of the scratch arrays — the classic
	// CH renumbering trick, worth a multiple in warm-query latency.
	// Arc records are interleaved (chArc) rather than parallel arrays
	// for the same reason: one line fetch per arc group, not three.
	//
	// Upward CSR: arcs u -> v with rank[u] < rank[v], grouped by u.
	upOff []int32
	up    []chArc
	// Downward CSR: arcs x -> v with rank[x] > rank[v], grouped by the
	// HEAD v — the backward search walks them head-to-tail (chArc.other
	// is the tail's rank).
	dnOff []int32
	dn    []chArc

	shortcuts int   // live shortcut arcs
	buildNs   int64 // wall-clock preprocessing time
}

// buildCH preprocesses e into a contraction hierarchy, or returns nil
// when the graph is below chMinNodes.
func buildCH(e *Engine) *chData {
	n := len(e.pos)
	if n < chMinNodes {
		return nil
	}
	start := time.Now()
	b := newCHBuilder(e)
	b.order()
	d := b.finish()
	d.buildNs = time.Since(start).Nanoseconds()
	return d
}

// chBuilder is the preprocessing state: a mutable adjacency over the
// growing arc store, contraction bookkeeping, and witness-search
// scratch. Everything is slice-based — no map iteration anywhere — so
// builds are deterministic for a given graph.
type chBuilder struct {
	n int

	aFrom, aTo    []int32
	aW            []float64
	aMid          []int32
	aLeft, aRight []int32
	aEid          []int32
	alive         []bool

	out, in [][]int32 // arc ids per tail/head; dead ids pruned lazily

	contracted []bool
	rank       []int32
	nextRank   int32
	delNbrs    []int32 // contracted-neighbors term of the priority
	dirty      []bool  // neighborhood changed since priority last computed

	pq nodeHeap // lazy-update contraction queue

	// wit is the sequential phase's witness scratch; the parallel
	// initial-priority pass gives each worker its own.
	wit chWitScratch
}

// chWitScratch bundles the state one witness search needs: the
// epoch-stamped label arrays, the search heap, and the neighbor
// snapshots of the node being simulated or contracted. Keeping it
// explicit (rather than on chBuilder) lets the initial-priority pass
// run one scratch per worker over the read-only seed graph.
type chWitScratch struct {
	ins, outs []chNbr
	wDist     []float64
	wSeen     []uint32
	wEpoch    uint32
	wHeap     chHeap
}

func newCHWitScratch(n int) chWitScratch {
	return chWitScratch{
		wDist: make([]float64, n),
		wSeen: make([]uint32, n),
	}
}

// chArc is one packed query-CSR arc: the far endpoint's rank, the arc
// store id (for path unpacking), and the search weight.
type chArc struct {
	other int32
	arc   int32
	w     float64
}

// chNbr is one uncontracted neighbor arc of the contraction candidate.
type chNbr struct {
	node int32
	w    float64
	arc  int32
}

func newCHBuilder(e *Engine) *chBuilder {
	n := len(e.pos)
	m := len(e.w)
	b := &chBuilder{
		n:          n,
		aFrom:      make([]int32, 0, m+m/2),
		aTo:        make([]int32, 0, m+m/2),
		aW:         make([]float64, 0, m+m/2),
		aMid:       make([]int32, 0, m+m/2),
		aLeft:      make([]int32, 0, m+m/2),
		aRight:     make([]int32, 0, m+m/2),
		aEid:       make([]int32, 0, m+m/2),
		alive:      make([]bool, 0, m+m/2),
		out:        make([][]int32, n),
		in:         make([][]int32, n),
		contracted: make([]bool, n),
		rank:       make([]int32, n),
		delNbrs:    make([]int32, n),
		dirty:      make([]bool, n),
		wit:        newCHWitScratch(n),
	}
	// Seed the arc store from the CSR, dropping self-loops and keeping
	// only the cheapest of parallel arcs (first wins ties, matching the
	// strict-improvement rule of the flat searches — an equal-weight
	// duplicate never changes a Dijkstra distance).
	for u := 0; u < n; u++ {
		for i := e.off[u]; i < e.off[u+1]; i++ {
			if v := e.to[i]; v != int32(u) {
				b.addArc(int32(u), v, e.w[i], -1, -1, -1, e.eid[i])
			}
		}
	}
	return b
}

// addArc inserts u -> v unless an alive arc at most as cheap already
// exists; a strictly more expensive parallel arc is superseded (marked
// dead, record retained for unpacking).
func (b *chBuilder) addArc(u, v int32, w float64, mid, left, right, eid int32) {
	for _, id := range b.out[u] {
		if b.alive[id] && b.aTo[id] == v {
			if b.aW[id] <= w {
				return
			}
			b.alive[id] = false
			break
		}
	}
	id := int32(len(b.aFrom))
	b.aFrom = append(b.aFrom, u)
	b.aTo = append(b.aTo, v)
	b.aW = append(b.aW, w)
	b.aMid = append(b.aMid, mid)
	b.aLeft = append(b.aLeft, left)
	b.aRight = append(b.aRight, right)
	b.aEid = append(b.aEid, eid)
	b.alive = append(b.alive, true)
	b.out[u] = append(b.out[u], id)
	b.in[v] = append(b.in[v], id)
}

// gather snapshots v's alive arcs to/from uncontracted neighbors into
// s.ins/s.outs. With compact=true it also squeezes dead ids out of the
// adjacency lists on the way through; the parallel initial pass runs
// with compact=false so it never writes shared builder state.
func (b *chBuilder) gather(s *chWitScratch, v int32, compact bool) {
	s.ins = s.ins[:0]
	live := b.in[v][:0]
	for _, id := range b.in[v] {
		if !b.alive[id] {
			continue
		}
		if compact {
			live = append(live, id)
		}
		if u := b.aFrom[id]; !b.contracted[u] && u != v {
			s.ins = append(s.ins, chNbr{node: u, w: b.aW[id], arc: id})
		}
	}
	if compact {
		b.in[v] = live
	}
	s.outs = s.outs[:0]
	live = b.out[v][:0]
	for _, id := range b.out[v] {
		if !b.alive[id] {
			continue
		}
		if compact {
			live = append(live, id)
		}
		if w := b.aTo[id]; !b.contracted[w] && w != v {
			s.outs = append(s.outs, chNbr{node: w, w: b.aW[id], arc: id})
		}
	}
	if compact {
		b.out[v] = live
	}
}

// witness runs a bounded, settle-capped Dijkstra from u over the
// remaining (uncontracted) graph with node excl removed. Labels stay
// valid in wDist/wSeen at the new wEpoch; every label is the length of
// a real path, so even unsettled labels soundly prove a witness.
func (b *chBuilder) witness(s *chWitScratch, u, excl int32, bound float64, settleCap int) {
	if s.wEpoch == math.MaxUint32 {
		for i := range s.wSeen {
			s.wSeen[i] = 0
		}
		s.wEpoch = 0
	}
	s.wEpoch++
	s.wHeap.reset()
	s.wDist[u] = 0
	s.wSeen[u] = s.wEpoch
	s.wHeap.push(u, 0)
	settles := 0
	for s.wHeap.len() > 0 {
		cur := s.wHeap.pop()
		if cur.prio > s.wDist[cur.node] {
			continue // stale entry; node already settled cheaper
		}
		if cur.prio > bound {
			break
		}
		settles++
		if settles > settleCap {
			break
		}
		d := s.wDist[cur.node]
		for _, id := range b.out[cur.node] {
			if !b.alive[id] {
				continue
			}
			y := b.aTo[id]
			if y == excl || b.contracted[y] {
				continue
			}
			nd := d + b.aW[id]
			if s.wSeen[y] != s.wEpoch || nd < s.wDist[y] {
				s.wDist[y] = nd
				s.wSeen[y] = s.wEpoch
				s.wHeap.push(y, nd)
			}
		}
	}
}

// shortcutsFor counts the shortcuts contracting v would need; with
// add=true it also inserts them (and compacts adjacency lists). Leaves
// the gathered neighbor snapshots in s.ins/s.outs for the caller.
func (b *chBuilder) shortcutsFor(s *chWitScratch, v int32, add, compact bool) int {
	b.gather(s, v, compact)
	if len(s.ins) == 0 || len(s.outs) == 0 {
		return 0
	}
	maxOut := 0.0
	for _, o := range s.outs {
		if o.w > maxOut {
			maxOut = o.w
		}
	}
	settleCap := chWitnessSettlesSim
	if add {
		settleCap = chWitnessSettlesContract
	}
	count := 0
	for _, ia := range s.ins {
		b.witness(s, ia.node, v, ia.w+maxOut, settleCap)
		for _, oa := range s.outs {
			if oa.node == ia.node {
				continue
			}
			sw := ia.w + oa.w
			if s.wSeen[oa.node] == s.wEpoch && s.wDist[oa.node] <= sw {
				continue // witness path avoids v
			}
			count++
			if add {
				b.addArc(ia.node, oa.node, sw, v, ia.arc, oa.arc, -1)
			}
		}
	}
	return count
}

// priority is the contraction importance of v: edge difference
// (weighted toward shortcuts added, minus arcs removed) plus the count
// of already contracted neighbors, which spreads contraction evenly
// across the graph instead of eating one region at a time.
func (b *chBuilder) priority(s *chWitScratch, v int32, compact bool) float64 {
	sc := b.shortcutsFor(s, v, false, compact)
	return float64(2*sc) - 1.5*float64(len(s.ins)+len(s.outs)) + float64(b.delNbrs[v])
}

// order contracts every node in lazy-update priority order. The
// initial priorities are a pure function of the read-only seed graph,
// so above chParallelOrderNodes they are computed by one worker per
// core (each with a private scratch) and bulk-heapified — identical
// results to the sequential pass, a fraction of the wall clock.
func (b *chBuilder) order() {
	prios := make([]float64, b.n)
	if b.n >= chParallelOrderNodes {
		workers := runtime.GOMAXPROCS(0)
		chunk := (b.n + workers - 1) / workers
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > b.n {
				hi = b.n
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				s := newCHWitScratch(b.n)
				for v := lo; v < hi; v++ {
					prios[v] = b.priority(&s, int32(v), false)
				}
			}(lo, hi)
		}
		wg.Wait()
	} else {
		for v := 0; v < b.n; v++ {
			prios[v] = b.priority(&b.wit, int32(v), false)
		}
	}
	b.pq.items = make([]heapItem, b.n)
	for v, p := range prios {
		b.pq.items[v] = heapItem{node: int32(v), prio: p}
	}
	b.pq.init()
	for b.pq.len() > 0 {
		cur := b.pq.pop()
		v := cur.node
		if b.contracted[v] {
			continue
		}
		// Lazy update: the stored priority is stale only if v's
		// neighborhood changed since it was computed (a neighbor was
		// contracted, or gained/lost an incident shortcut) — priority is
		// a pure function of that neighborhood, so a clean node contracts
		// without re-running its witness searches. Each uncontracted node
		// holds exactly one queue entry (every pop pushes back at most
		// once), so a clean pop really is the current minimum.
		if b.dirty[v] {
			b.dirty[v] = false
			if p := b.priority(&b.wit, v, true); b.pq.len() > 0 && p > b.pq.items[0].prio {
				b.pq.push(v, p)
				continue
			}
		}
		b.contract(v)
	}
}

// contract inserts v's shortcuts, assigns its rank, and bumps the
// contracted-neighbors term of its remaining neighbors.
func (b *chBuilder) contract(v int32) {
	b.shortcutsFor(&b.wit, v, true, true)
	b.contracted[v] = true
	b.rank[v] = b.nextRank
	b.nextRank++
	for _, ia := range b.wit.ins {
		b.delNbrs[ia.node]++
		b.dirty[ia.node] = true
	}
	for _, oa := range b.wit.outs {
		b.delNbrs[oa.node]++
		b.dirty[oa.node] = true
	}
}

// finish splits the alive arcs into the upward and downward CSR views.
func (b *chBuilder) finish() *chData {
	d := &chData{
		rank:   b.rank,
		aFrom:  b.aFrom,
		aTo:    b.aTo,
		aW:     b.aW,
		aMid:   b.aMid,
		aLeft:  b.aLeft,
		aRight: b.aRight,
		aEid:   b.aEid,
	}
	n := b.n
	d.upOff = make([]int32, n+1)
	d.dnOff = make([]int32, n+1)
	up, dn := 0, 0
	for id := range b.aFrom {
		if !b.alive[id] {
			continue
		}
		ru, rv := b.rank[b.aFrom[id]], b.rank[b.aTo[id]]
		if ru < rv {
			d.upOff[ru+1]++
			up++
		} else {
			d.dnOff[rv+1]++
			dn++
		}
		if b.aMid[id] >= 0 {
			d.shortcuts++
		}
	}
	for i := 0; i < n; i++ {
		d.upOff[i+1] += d.upOff[i]
		d.dnOff[i+1] += d.dnOff[i]
	}
	d.up = make([]chArc, up)
	d.dn = make([]chArc, dn)
	upFill := make([]int32, n)
	dnFill := make([]int32, n)
	for id := range b.aFrom {
		if !b.alive[id] {
			continue
		}
		ru, rv := b.rank[b.aFrom[id]], b.rank[b.aTo[id]]
		if ru < rv {
			slot := d.upOff[ru] + upFill[ru]
			upFill[ru]++
			d.up[slot] = chArc{other: rv, arc: int32(id), w: b.aW[id]}
		} else {
			slot := d.dnOff[rv] + dnFill[rv]
			dnFill[rv]++
			d.dn[slot] = chArc{other: ru, arc: int32(id), w: b.aW[id]}
		}
	}
	return d
}
