package roadnet

// nodeHeap is a typed index-based binary min-heap over (node, priority)
// pairs — the replacement for the old container/heap nodePQ. Items are
// stored inline (no interface{} boxing), so Push/Pop allocate nothing
// once the backing array has grown to the search's high-water mark.
//
// The sift-up/sift-down order replicates container/heap exactly
// (same strict-less comparisons, same swap sequence), so searches that
// break distance ties by pop order produce byte-identical paths to the
// legacy implementation.
type nodeHeap struct {
	items []heapItem
}

type heapItem struct {
	node int32
	prio float64
}

func (h *nodeHeap) reset() { h.items = h.items[:0] }

// grow reserves capacity for at least n items, so a caller that knows
// its frontier's high-water mark (the CH contraction queue pushes every
// node up front) avoids the append doubling-chain.
func (h *nodeHeap) grow(n int) {
	if cap(h.items) < n {
		items := make([]heapItem, len(h.items), n)
		copy(items, h.items)
		h.items = items
	}
}

func (h *nodeHeap) len() int { return len(h.items) }

func (h *nodeHeap) less(i, j int) bool { return h.items[i].prio < h.items[j].prio }

func (h *nodeHeap) swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }

// push adds an item and restores the heap property.
func (h *nodeHeap) push(node int32, prio float64) {
	h.items = append(h.items, heapItem{node: node, prio: prio})
	h.up(len(h.items) - 1)
}

// pop removes and returns the minimum item.
func (h *nodeHeap) pop() heapItem {
	n := len(h.items) - 1
	h.swap(0, n)
	h.down(0, n)
	it := h.items[n]
	h.items = h.items[:n]
	return it
}

func (h *nodeHeap) up(j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || !h.less(j, i) {
			break
		}
		h.swap(i, j)
		j = i
	}
}

func (h *nodeHeap) down(i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 { // j1 < 0 after int overflow
			break
		}
		j := j1 // left child
		if j2 := j1 + 1; j2 < n && h.less(j2, j1) {
			j = j2 // = 2*i + 2, right child
		}
		if !h.less(j, i) {
			break
		}
		h.swap(i, j)
		i = j
	}
}

// init establishes the heap property over items assigned directly to
// the backing slice — the same bottom-up sift container/heap.Init
// performs. The CH contraction queue uses it to bulk-load all initial
// priorities in O(n) instead of n pushes in O(n log n).
func (h *nodeHeap) init() {
	n := len(h.items)
	for i := n/2 - 1; i >= 0; i-- {
		h.down(i, n)
	}
}
