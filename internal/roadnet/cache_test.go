package roadnet

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRouteCacheGetPut(t *testing.T) {
	c := NewRouteCache(64)
	if _, _, hit := c.get(1, 2); hit {
		t.Fatal("empty cache reported a hit")
	}
	c.put(1, 2, 42.5, true)
	d, ok, hit := c.get(1, 2)
	if !hit || !ok || d != 42.5 {
		t.Fatalf("get(1,2) = (%v, %v, %v), want (42.5, true, true)", d, ok, hit)
	}
	// Negative entry: a cached "no path".
	c.put(3, 4, math.Inf(1), false)
	d, ok, hit = c.get(3, 4)
	if !hit || ok || !math.IsInf(d, 1) {
		t.Fatalf("negative get(3,4) = (%v, %v, %v), want (+Inf, false, true)", d, ok, hit)
	}
	if c.Hits() != 2 || c.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d, want 2/1", c.Hits(), c.Misses())
	}
}

func TestRouteCacheLRUEviction(t *testing.T) {
	// Capacity below the shard count rounds up to one entry per shard:
	// inserting two keys that land in the same shard evicts the older.
	c := NewRouteCache(1)
	var shardOf = func(u, v int32) *cacheShard { return c.shard(cacheKey{u, v}) }
	// Find two distinct keys in the same shard.
	base := cacheKey{0, 0}
	s0 := shardOf(0, 0)
	var other cacheKey
	found := false
	for v := int32(1); v < 1000 && !found; v++ {
		if shardOf(0, v) == s0 {
			other = cacheKey{0, v}
			found = true
		}
	}
	if !found {
		t.Fatal("could not find two keys sharing a shard")
	}
	c.put(base.u, base.v, 1, true)
	c.put(other.u, other.v, 2, true)
	if _, _, hit := c.get(base.u, base.v); hit {
		t.Fatal("LRU entry survived eviction in a full shard")
	}
	if d, _, hit := c.get(other.u, other.v); !hit || d != 2 {
		t.Fatalf("most-recent entry missing after eviction: (%v, %v)", d, hit)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestRouteCachePutRefreshesExisting(t *testing.T) {
	c := NewRouteCache(1)
	c.put(0, 0, 1, true)
	c.put(0, 0, 10, true) // overwrite must refresh, not evict or duplicate
	if d, _, hit := c.get(0, 0); !hit || d != 10 {
		t.Fatalf("refreshed entry = (%v, %v), want (10, true)", d, hit)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestRouteCacheSingleflight(t *testing.T) {
	c := NewRouteCache(1024)
	const goroutines = 16
	var calls atomic.Int32
	var wg sync.WaitGroup
	start := make(chan struct{})
	results := make([]float64, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			d, ok := c.getOrCompute(7, 8, func() (float64, bool) {
				calls.Add(1)
				return 123.25, true
			})
			if !ok {
				t.Error("getOrCompute returned ok=false")
			}
			results[i] = d
		}(i)
	}
	close(start)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("compute ran %d times under concurrent callers, want 1", n)
	}
	for i, d := range results {
		if d != 123.25 {
			t.Fatalf("caller %d got %v, want 123.25", i, d)
		}
	}
}
