package roadnet_test

// Defensive test for the package-level mutation/aliasing contract:
// Graph.OutEdges returns the graph's internal adjacency storage, so
// the downstream consumers (trip simulation, map matching, snapping)
// must never append to or write through the returned slices. This test
// snapshots the adjacency before driving those consumers and fails if
// any element — or the backing-array identity — changed.

import (
	"testing"

	"sidq/internal/geo"
	"sidq/internal/roadnet"
	"sidq/internal/simulate"
	"sidq/internal/uncertain"
)

// adjacencySnapshot deep-copies every node's out-edge list.
func adjacencySnapshot(g *roadnet.Graph) [][]roadnet.EdgeID {
	snap := make([][]roadnet.EdgeID, g.NumNodes())
	for n := 0; n < g.NumNodes(); n++ {
		out := g.OutEdges(roadnet.NodeID(n))
		snap[n] = append([]roadnet.EdgeID(nil), out...)
	}
	return snap
}

func checkAdjacency(t *testing.T, g *roadnet.Graph, snap [][]roadnet.EdgeID, stage string) {
	t.Helper()
	if g.NumNodes() != len(snap) {
		t.Fatalf("%s: node count changed: %d -> %d", stage, len(snap), g.NumNodes())
	}
	for n := range snap {
		out := g.OutEdges(roadnet.NodeID(n))
		if len(out) != len(snap[n]) {
			t.Fatalf("%s: node %d adjacency length changed: %v -> %v", stage, n, snap[n], out)
		}
		for i := range out {
			if out[i] != snap[n][i] {
				t.Fatalf("%s: node %d adjacency mutated at %d: %v -> %v", stage, n, i, snap[n], out)
			}
		}
	}
}

func TestOutEdgesCallersDoNotMutate(t *testing.T) {
	g := roadnet.GridCity(roadnet.GridCityOptions{
		NX: 9, NY: 9, Spacing: 110, Jitter: 6, RemoveFrac: 0.2, Seed: 77,
	})
	snap := adjacencySnapshot(g)

	trips := simulate.Trips(g, simulate.TripOptions{
		NumObjects: 4, MinHops: 10, Speed: 12, SampleInterval: 1, Seed: 78,
	})
	checkAdjacency(t, g, snap, "simulate.Trips")

	snapper := roadnet.NewSnapper(g, 100)
	for i, tr := range trips {
		noisy := simulate.AddGaussianNoise(tr, 9, int64(80+i))
		if _, err := uncertain.MapMatch(g, snapper, noisy, uncertain.MatchOptions{EmissionSigma: 12}); err != nil {
			t.Fatalf("MapMatch trip %d: %v", i, err)
		}
	}
	checkAdjacency(t, g, snap, "uncertain.MapMatch")

	// Engine compilation and direct queries must not touch adjacency
	// either: the CSR build reads it, never writes.
	for a := 0; a < g.NumNodes(); a += 7 {
		for b := g.NumNodes() - 1; b >= 0; b -= 13 {
			_, _ = g.ShortestPath(roadnet.NodeID(a), roadnet.NodeID(b))
			_, _ = g.AStar(roadnet.NodeID(a), roadnet.NodeID(b))
		}
	}
	checkAdjacency(t, g, snap, "engine queries")
}

// TestOutEdgesAliasesInternalStorage documents (and pins) the aliasing
// half of the contract: the same node returns the same backing slice,
// not a copy, which is why callers must treat it as read-only.
func TestOutEdgesAliasesInternalStorage(t *testing.T) {
	g := roadnet.NewGraph()
	a := g.AddNode(geo.Pt(0, 0))
	b := g.AddNode(geo.Pt(100, 0))
	g.AddBidirectional(a, b, 10)
	o1 := g.OutEdges(a)
	o2 := g.OutEdges(a)
	if len(o1) != 1 || len(o2) != 1 {
		t.Fatalf("expected one out-edge, got %v / %v", o1, o2)
	}
	if &o1[0] != &o2[0] {
		t.Fatal("OutEdges returned a copy; the documented contract says it aliases internal storage")
	}
}
