package roadnet

// Query-engine observability. Every Engine keeps its own atomic
// counters (one add per query, batched for heap pops — never inside
// the relaxation loop), exposed via Engine.Stats. Package-level totals
// aggregate across all engines and caches for process-wide exposition;
// they are updated only after InstrumentTo enables them, so the
// default cost is a single atomic bool load per query.

import (
	"sync/atomic"

	"sidq/internal/obs"
)

// engineCounters are one engine's query counters.
type engineCounters struct {
	dijkstra    atomic.Uint64 // plain Dijkstra path searches
	astarALT    atomic.Uint64 // A* searches using ALT lower bounds
	astarEuclid atomic.Uint64 // A* searches on the Euclidean fallback (no ALT tables)
	manySweeps  atomic.Uint64 // truncated one-to-many sweeps (Dist/ManyDist/SnapDists)
	chDist      atomic.Uint64 // CH bidirectional point-to-point queries
	chMany      atomic.Uint64 // CH one-to-many queries (shared forward search)
	heapPops    atomic.Uint64 // total heap pops across all searches
}

// pkgObs aggregates across every engine and route cache in the
// process. enabled gates the aggregation so uninstrumented processes
// pay only the atomic load.
var pkgObs struct {
	enabled atomic.Bool

	dijkstra, astarALT, astarEuclid atomic.Uint64
	manySweeps, heapPops            atomic.Uint64
	chDist, chMany                  atomic.Uint64

	cacheHits, cacheMisses, cacheDedups atomic.Uint64
}

// obsAdd bumps an engine counter and, when package observation is
// enabled, the matching process-wide total.
func obsAdd(own, total *atomic.Uint64, n uint64) {
	own.Add(n)
	if pkgObs.enabled.Load() {
		total.Add(n)
	}
}

// EngineStats is a point-in-time snapshot of one engine's query
// counters and its route cache.
type EngineStats struct {
	Dijkstra    uint64 // ShortestPath searches
	AStarALT    uint64 // AStar searches that used ALT lower bounds
	AStarEuclid uint64 // AStar searches that fell back to the Euclidean bound
	ManySweeps  uint64 // one-to-many flat sweeps (fallback Dist/ManyDist/SnapDists misses)
	CHDist      uint64 // CH bidirectional point-to-point queries
	CHMany      uint64 // CH one-to-many queries (ManyDist / SnapDists misses)
	HeapPops    uint64 // heap pops across every search

	CHShortcuts int   // shortcut arcs in the compiled hierarchy (0 = no CH)
	CHBuildNs   int64 // wall-clock CH preprocessing time (0 = no CH)

	CacheHits   uint64 // route-cache lookups served from cache
	CacheMisses uint64 // route-cache lookups that required a search
	CacheDedups uint64 // singleflight joins (search skipped, waited on a peer)
	CacheLen    int    // current cached entries
}

// Stats returns the engine's current counters.
func (e *Engine) Stats() EngineStats {
	st := EngineStats{
		Dijkstra:    e.ctr.dijkstra.Load(),
		AStarALT:    e.ctr.astarALT.Load(),
		AStarEuclid: e.ctr.astarEuclid.Load(),
		ManySweeps:  e.ctr.manySweeps.Load(),
		CHDist:      e.ctr.chDist.Load(),
		CHMany:      e.ctr.chMany.Load(),
		HeapPops:    e.ctr.heapPops.Load(),
		CacheHits:   e.cache.Hits(),
		CacheMisses: e.cache.Misses(),
		CacheDedups: e.cache.Dedups(),
		CacheLen:    e.cache.Len(),
	}
	if e.ch != nil {
		st.CHShortcuts = e.ch.shortcuts
		st.CHBuildNs = e.ch.buildNs
	}
	return st
}

// InstrumentTo enables process-wide roadnet aggregation and registers
// the sidq_roadnet_* families in reg as callback series. Totals span
// every engine and route cache in the process from the first call on
// (queries before it are not retroactively counted). Safe to call more
// than once and from multiple registries.
func InstrumentTo(reg *obs.Registry) {
	pkgObs.enabled.Store(true)
	reg.Help("sidq_roadnet_dijkstra_total", "Plain Dijkstra path searches across all engines.")
	reg.Help("sidq_roadnet_astar_alt_total", "A* searches using ALT landmark lower bounds.")
	reg.Help("sidq_roadnet_astar_euclid_total", "A* searches on the Euclidean fallback (graph too small for ALT).")
	reg.Help("sidq_roadnet_many_sweeps_total", "Truncated one-to-many Dijkstra sweeps.")
	reg.Help("sidq_roadnet_ch_dist_total", "Contraction-hierarchy bidirectional point-to-point queries.")
	reg.Help("sidq_roadnet_ch_many_total", "Contraction-hierarchy one-to-many queries (shared forward search).")
	reg.Help("sidq_roadnet_heap_pops_total", "Heap pops across every road-network search.")
	reg.Help("sidq_roadnet_route_cache_hits_total", "Route-cache lookups served from cache.")
	reg.Help("sidq_roadnet_route_cache_misses_total", "Route-cache lookups that required a graph search.")
	reg.Help("sidq_roadnet_route_cache_dedups_total", "Route-cache singleflight joins (duplicate concurrent searches avoided).")
	counter := func(name string, v *atomic.Uint64) {
		reg.Func(name, obs.FuncCounter, func() float64 { return float64(v.Load()) })
	}
	counter("sidq_roadnet_dijkstra_total", &pkgObs.dijkstra)
	counter("sidq_roadnet_astar_alt_total", &pkgObs.astarALT)
	counter("sidq_roadnet_astar_euclid_total", &pkgObs.astarEuclid)
	counter("sidq_roadnet_many_sweeps_total", &pkgObs.manySweeps)
	counter("sidq_roadnet_ch_dist_total", &pkgObs.chDist)
	counter("sidq_roadnet_ch_many_total", &pkgObs.chMany)
	counter("sidq_roadnet_heap_pops_total", &pkgObs.heapPops)
	counter("sidq_roadnet_route_cache_hits_total", &pkgObs.cacheHits)
	counter("sidq_roadnet_route_cache_misses_total", &pkgObs.cacheMisses)
	counter("sidq_roadnet_route_cache_dedups_total", &pkgObs.cacheDedups)
}
