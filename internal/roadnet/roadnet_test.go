package roadnet

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"sidq/internal/geo"
)

func simpleSquare() *Graph {
	// 0 -- 1
	// |    |
	// 2 -- 3
	g := NewGraph()
	n0 := g.AddNode(geo.Pt(0, 100))
	n1 := g.AddNode(geo.Pt(100, 100))
	n2 := g.AddNode(geo.Pt(0, 0))
	n3 := g.AddNode(geo.Pt(100, 0))
	g.AddBidirectional(n0, n1, 10)
	g.AddBidirectional(n0, n2, 10)
	g.AddBidirectional(n1, n3, 10)
	g.AddBidirectional(n2, n3, 10)
	return g
}

func TestShortestPathSquare(t *testing.T) {
	g := simpleSquare()
	p, err := g.ShortestPath(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Dist-200) > 1e-9 {
		t.Fatalf("dist = %v", p.Dist)
	}
	if len(p.Nodes) != 3 || p.Nodes[0] != 0 || p.Nodes[2] != 3 {
		t.Fatalf("nodes = %v", p.Nodes)
	}
	if len(p.Edges) != 2 {
		t.Fatalf("edges = %v", p.Edges)
	}
	// Path edges must actually connect the nodes.
	for i, eid := range p.Edges {
		e := g.Edge(eid)
		if e.From != p.Nodes[i] || e.To != p.Nodes[i+1] {
			t.Fatalf("edge %d does not connect %v", i, p.Nodes)
		}
	}
}

func TestShortestPathSelf(t *testing.T) {
	g := simpleSquare()
	p, err := g.ShortestPath(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Dist != 0 || len(p.Nodes) != 1 {
		t.Fatalf("self path: %+v", p)
	}
}

func TestNoPath(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(geo.Pt(0, 0))
	b := g.AddNode(geo.Pt(10, 0))
	_, err := g.ShortestPath(a, b)
	if !errors.Is(err, ErrNoPath) {
		t.Fatalf("want ErrNoPath, got %v", err)
	}
	if _, err := g.ShortestPath(a, NodeID(99)); !errors.Is(err, ErrNoPath) {
		t.Fatalf("bad node id: %v", err)
	}
}

func TestAStarMatchesDijkstra(t *testing.T) {
	g := GridCity(GridCityOptions{NX: 12, NY: 12, Spacing: 100, Jitter: 10, RemoveFrac: 0.25, Seed: 5})
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 40; trial++ {
		a := NodeID(rng.Intn(g.NumNodes()))
		b := NodeID(rng.Intn(g.NumNodes()))
		pd, errD := g.ShortestPath(a, b)
		pa, errA := g.AStar(a, b)
		if (errD == nil) != (errA == nil) {
			t.Fatalf("trial %d: error mismatch %v vs %v", trial, errD, errA)
		}
		if errD != nil {
			continue
		}
		if math.Abs(pd.Dist-pa.Dist) > 1e-6 {
			t.Fatalf("trial %d: dijkstra %v vs astar %v", trial, pd.Dist, pa.Dist)
		}
	}
}

func TestGridCityConnected(t *testing.T) {
	g := GridCity(GridCityOptions{NX: 8, NY: 8, Spacing: 100, RemoveFrac: 0.4, Seed: 1})
	// The boundary ring is preserved, so all corner-to-corner routes exist.
	if _, err := g.ShortestPath(0, NodeID(g.NumNodes()-1)); err != nil {
		t.Fatalf("grid city disconnected: %v", err)
	}
	if g.NumNodes() != 64 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Determinism.
	g2 := GridCity(GridCityOptions{NX: 8, NY: 8, Spacing: 100, RemoveFrac: 0.4, Seed: 1})
	if g2.NumEdges() != g.NumEdges() {
		t.Fatal("generator not deterministic")
	}
}

func TestGridCityDefaults(t *testing.T) {
	g := GridCity(GridCityOptions{})
	if g.NumNodes() != 4 {
		t.Fatalf("default city nodes = %d", g.NumNodes())
	}
	if g.NumEdges() == 0 {
		t.Fatal("default city has no edges")
	}
}

func TestEdgeTravelTime(t *testing.T) {
	g := simpleSquare()
	e := g.Edge(0)
	if math.Abs(e.TravelTime()-10) > 1e-9 { // 100 m at 10 m/s
		t.Fatalf("travel time = %v", e.TravelTime())
	}
	bad := Edge{Length: 10, SpeedCap: 0}
	if !math.IsInf(bad.TravelTime(), 1) {
		t.Fatal("zero speed should be +Inf")
	}
}

func TestSnapperNearest(t *testing.T) {
	g := simpleSquare()
	s := NewSnapper(g, 50)
	snap, ok := s.Nearest(geo.Pt(50, -10))
	if !ok {
		t.Fatal("no snap")
	}
	if math.Abs(snap.Dist-10) > 1e-9 {
		t.Fatalf("snap dist = %v", snap.Dist)
	}
	if snap.Pos.Dist(geo.Pt(50, 0)) > 1e-9 {
		t.Fatalf("snap pos = %v", snap.Pos)
	}
	e := g.Edge(snap.Edge)
	if !(e.From == 2 && e.To == 3) && !(e.From == 3 && e.To == 2) {
		t.Fatalf("snapped to wrong edge %v", e)
	}
}

func TestSnapperMatchesBruteForce(t *testing.T) {
	g := GridCity(GridCityOptions{NX: 10, NY: 10, Spacing: 100, Jitter: 15, RemoveFrac: 0.2, Seed: 7})
	s := NewSnapper(g, 80)
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 100; trial++ {
		p := geo.Pt(rng.Float64()*900, rng.Float64()*900)
		snap, ok := s.Nearest(p)
		if !ok {
			t.Fatal("no snap")
		}
		// Brute force.
		best := math.Inf(1)
		for i := 0; i < g.NumEdges(); i++ {
			e := g.Edge(EdgeID(i))
			seg := geo.Segment{A: g.Node(e.From).Pos, B: g.Node(e.To).Pos}
			if d := seg.Dist(p); d < best {
				best = d
			}
		}
		if math.Abs(snap.Dist-best) > 1e-9 {
			t.Fatalf("trial %d: snap %v vs brute %v", trial, snap.Dist, best)
		}
	}
}

func TestSnapperKNearest(t *testing.T) {
	g := GridCity(GridCityOptions{NX: 6, NY: 6, Spacing: 100, Seed: 2})
	s := NewSnapper(g, 60)
	p := geo.Pt(250, 250)
	snaps := s.KNearest(p, 5)
	if len(snaps) != 5 {
		t.Fatalf("got %d snaps", len(snaps))
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i].Dist < snaps[i-1].Dist {
			t.Fatal("snaps not sorted by distance")
		}
	}
	seen := map[EdgeID]bool{}
	for _, sn := range snaps {
		if seen[sn.Edge] {
			t.Fatal("duplicate edge in KNearest")
		}
		seen[sn.Edge] = true
	}
	// First snap must agree with Nearest.
	n, _ := s.Nearest(p)
	if math.Abs(snaps[0].Dist-n.Dist) > 1e-9 {
		t.Fatalf("KNearest[0] %v != Nearest %v", snaps[0].Dist, n.Dist)
	}
	if s.KNearest(p, 0) != nil {
		t.Fatal("k=0 should be nil")
	}
}

func TestNetworkDist(t *testing.T) {
	g := simpleSquare()
	// Find the directed edge 2->3.
	var e23 EdgeID = -1
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(EdgeID(i))
		if e.From == 2 && e.To == 3 {
			e23 = e.ID
		}
	}
	if e23 < 0 {
		t.Fatal("edge 2->3 not found")
	}
	// Same edge forward: from 25% to 75% of a 100 m edge = 50 m.
	d, err := g.NetworkDist(e23, 0.25, e23, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-50) > 1e-9 {
		t.Fatalf("same-edge dist = %v", d)
	}
}

func TestNodeAtAndGeometry(t *testing.T) {
	g := simpleSquare()
	id, ok := g.NodeAt(geo.Pt(95, 95))
	if !ok || id != 1 {
		t.Fatalf("NodeAt = %v %v", id, ok)
	}
	if _, ok := NewGraph().NodeAt(geo.Pt(0, 0)); ok {
		t.Fatal("empty graph NodeAt should be !ok")
	}
	p, err := g.ShortestPath(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	pl := g.Geometry(p)
	if len(pl) != len(p.Nodes) {
		t.Fatal("geometry length mismatch")
	}
	if math.Abs(pl.Length()-p.Dist) > 1e-9 {
		t.Fatalf("geometry length %v != path dist %v", pl.Length(), p.Dist)
	}
}

func TestPointAlongEdge(t *testing.T) {
	g := simpleSquare()
	var e EdgeID = -1
	for i := 0; i < g.NumEdges(); i++ {
		ed := g.Edge(EdgeID(i))
		if ed.From == 2 && ed.To == 3 {
			e = ed.ID
		}
	}
	mid := g.PointAlongEdge(e, 0.5)
	if mid.Dist(geo.Pt(50, 0)) > 1e-9 {
		t.Fatalf("mid = %v", mid)
	}
}
