// Package roadnet implements the road-network substrate used by
// map-matching, route recovery, and network-constrained trajectory
// compression: a directed graph embedded in the plane, a compiled
// query engine (CSR adjacency, one-to-many bounded Dijkstra, ALT
// A*, sharded route cache — see Engine), nearest-edge snapping, and a
// deterministic synthetic grid-city generator.
//
// # Mutation and aliasing contract
//
// Graph accessors that return slices — most importantly OutEdges —
// return the graph's internal backing arrays, not copies. Callers must
// treat them as read-only: appending to or writing through a returned
// slice corrupts the adjacency structure and the compiled engine
// snapshot. Build-then-query is the intended lifecycle: construct the
// graph with AddNode/AddEdge, then query from any number of
// goroutines. Queries are safe concurrently; mutating the graph
// concurrently with queries is not. AddNode/AddEdge invalidate the
// compiled engine (and its route cache), which is rebuilt lazily on
// the next query.
package roadnet

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"sidq/internal/geo"
)

// ErrNoPath is returned when no route exists between two nodes.
var ErrNoPath = errors.New("roadnet: no path")

// NodeID identifies a graph node.
type NodeID int

// EdgeID identifies a directed edge.
type EdgeID int

// Node is a road intersection (or dead end) embedded in the plane.
type Node struct {
	ID  NodeID
	Pos geo.Point
}

// Edge is a directed road segment between two nodes.
type Edge struct {
	ID       EdgeID
	From, To NodeID
	Length   float64 // meters
	SpeedCap float64 // free-flow speed, m/s
}

// TravelTime returns the free-flow traversal time of the edge.
func (e Edge) TravelTime() float64 {
	if e.SpeedCap <= 0 {
		return math.Inf(1)
	}
	return e.Length / e.SpeedCap
}

// Graph is a directed road network.
type Graph struct {
	nodes []Node
	edges []Edge
	out   [][]EdgeID // adjacency: outgoing edges per node

	// Compiled query engine, built lazily and invalidated by
	// mutation. The mutex only guards engine (re)builds; queries load
	// the pointer atomically.
	engMu sync.Mutex
	eng   atomic.Pointer[Engine]
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return &Graph{} }

// AddNode appends a node at pos and returns its id.
func (g *Graph) AddNode(pos geo.Point) NodeID {
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, Node{ID: id, Pos: pos})
	g.out = append(g.out, nil)
	g.eng.Store(nil) // invalidate the compiled engine
	return id
}

// AddEdge adds a directed edge from a to b with the given free-flow
// speed; length is computed from the node embedding. It returns the new
// edge id. It panics on out-of-range node ids (programming error).
func (g *Graph) AddEdge(a, b NodeID, speedCap float64) EdgeID {
	if int(a) >= len(g.nodes) || int(b) >= len(g.nodes) || a < 0 || b < 0 {
		panic(fmt.Sprintf("roadnet: AddEdge bad nodes %d->%d (have %d)", a, b, len(g.nodes)))
	}
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, Edge{
		ID:       id,
		From:     a,
		To:       b,
		Length:   g.nodes[a].Pos.Dist(g.nodes[b].Pos),
		SpeedCap: speedCap,
	})
	g.out[a] = append(g.out[a], id)
	g.eng.Store(nil) // invalidate the compiled engine (and route cache)
	return id
}

// AddBidirectional adds edges in both directions and returns both ids.
func (g *Graph) AddBidirectional(a, b NodeID, speedCap float64) (EdgeID, EdgeID) {
	return g.AddEdge(a, b, speedCap), g.AddEdge(b, a, speedCap)
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the directed-edge count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Node returns the node with the given id.
func (g *Graph) Node(id NodeID) Node { return g.nodes[id] }

// Edge returns the edge with the given id.
func (g *Graph) Edge(id EdgeID) Edge { return g.edges[id] }

// OutEdges returns the outgoing edge ids of node id. The returned
// slice aliases the graph's internal adjacency storage and MUST NOT be
// appended to or modified — see the package-level mutation contract.
func (g *Graph) OutEdges(id NodeID) []EdgeID { return g.out[id] }

// Engine returns the compiled query engine for the graph's current
// revision, building it on first use. The build compiles the CSR
// adjacency snapshot, tabulates ALT landmarks, and allocates the route
// cache; subsequent calls return the cached engine until the graph is
// mutated. Safe to call from multiple goroutines.
func (g *Graph) Engine() *Engine {
	if e := g.eng.Load(); e != nil {
		return e
	}
	g.engMu.Lock()
	defer g.engMu.Unlock()
	if e := g.eng.Load(); e != nil {
		return e
	}
	e := newEngine(g)
	g.eng.Store(e)
	return e
}

// Bounds returns the bounding rectangle of all node positions.
func (g *Graph) Bounds() geo.Rect {
	r := geo.EmptyRect()
	for _, n := range g.nodes {
		r = r.ExtendPoint(n.Pos)
	}
	return r
}

// Path is a shortest-path result.
type Path struct {
	Nodes []NodeID
	Edges []EdgeID
	Dist  float64 // meters
}

// Geometry returns the polyline through the path's node positions.
func (g *Graph) Geometry(p Path) geo.Polyline {
	pl := make(geo.Polyline, len(p.Nodes))
	for i, id := range p.Nodes {
		pl[i] = g.nodes[id].Pos
	}
	return pl
}

// ShortestPath returns the minimum-length path from a to b using
// Dijkstra's algorithm on the compiled engine.
func (g *Graph) ShortestPath(a, b NodeID) (Path, error) {
	return g.Engine().ShortestPath(a, b)
}

// AStar returns the minimum-length path from a to b using A* under the
// max of the Euclidean heuristic (admissible because edge lengths are
// Euclidean node distances) and the engine's ALT landmark lower
// bounds.
func (g *Graph) AStar(a, b NodeID) (Path, error) {
	return g.Engine().AStar(a, b)
}

func reverseEdges(s []EdgeID) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

func reverseNodes(s []NodeID) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// GridCityOptions configures the synthetic city generator.
type GridCityOptions struct {
	NX, NY     int     // intersections per axis (>= 2)
	Spacing    float64 // meters between intersections
	Jitter     float64 // positional jitter stddev in meters
	RemoveFrac float64 // fraction of interior street segments removed
	SpeedCap   float64 // uniform free-flow speed, m/s
	Seed       int64
}

// GridCity generates a Manhattan-style street grid: NX x NY
// intersections with jittered positions and a fraction of interior
// segments removed to create non-trivial shortest paths. All streets
// are bidirectional. The boundary ring is never removed and a repair
// pass reinstates removed segments for any intersection pocket the
// random removal cut off, so the graph is always strongly connected.
func GridCity(opt GridCityOptions) *Graph {
	if opt.NX < 2 {
		opt.NX = 2
	}
	if opt.NY < 2 {
		opt.NY = 2
	}
	if opt.Spacing <= 0 {
		opt.Spacing = 100
	}
	if opt.SpeedCap <= 0 {
		opt.SpeedCap = 13.9 // ~50 km/h
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	g := NewGraph()
	ids := make([][]NodeID, opt.NX)
	for x := 0; x < opt.NX; x++ {
		ids[x] = make([]NodeID, opt.NY)
		for y := 0; y < opt.NY; y++ {
			jx := rng.NormFloat64() * opt.Jitter
			jy := rng.NormFloat64() * opt.Jitter
			ids[x][y] = g.AddNode(geo.Pt(float64(x)*opt.Spacing+jx, float64(y)*opt.Spacing+jy))
		}
	}
	gridStreets(g, ids, opt.RemoveFrac, opt.SpeedCap, rng)
	return g
}

// gridStreets lays the street segments of one ids[x][y] grid: boundary
// ring always kept, interior segments removed with probability
// removeFrac, followed by the connectivity repair pass. Shared by
// GridCity and the per-city loop of Continental.
func gridStreets(g *Graph, ids [][]NodeID, removeFrac, speed float64, rng *rand.Rand) {
	nx, ny := len(ids), len(ids[0])
	keptH := make([][]bool, nx) // keptH[x][y]: segment (x,y)-(x+1,y)
	keptV := make([][]bool, nx) // keptV[x][y]: segment (x,y)-(x,y+1)
	for x := 0; x < nx; x++ {
		keptH[x] = make([]bool, ny)
		keptV[x] = make([]bool, ny)
	}
	interior := func(x, y int, horizontal bool) bool {
		if horizontal {
			return y > 0 && y < ny-1
		}
		return x > 0 && x < nx-1
	}
	for x := 0; x < nx; x++ {
		for y := 0; y < ny; y++ {
			if x+1 < nx {
				if !(interior(x, y, true) && rng.Float64() < removeFrac) {
					g.AddBidirectional(ids[x][y], ids[x+1][y], speed)
					keptH[x][y] = true
				}
			}
			if y+1 < ny {
				if !(interior(x, y, false) && rng.Float64() < removeFrac) {
					g.AddBidirectional(ids[x][y], ids[x][y+1], speed)
					keptV[x][y] = true
				}
			}
		}
	}
	ensureGridConnected(g, ids, keptH, keptV, speed)
}

// ensureGridConnected reinstates removed street segments until every
// intersection is reachable from the kept boundary ring — independent
// removal can strand an interior pocket (all incident segments gone
// with probability removeFrac^4 per node, a near-certainty at
// continental node counts). The repair is deterministic (fixed scan
// order, no rng) and adds nothing when the grid is already connected,
// so previously valid seeds keep byte-identical topology.
func ensureGridConnected(g *Graph, ids [][]NodeID, keptH, keptV [][]bool, speed float64) {
	nx, ny := len(ids), len(ids[0])
	visited := make([][]bool, nx)
	for x := range visited {
		visited[x] = make([]bool, ny)
	}
	var stack [][2]int
	absorb := func(sx, sy int) {
		visited[sx][sy] = true
		stack = append(stack[:0], [2]int{sx, sy})
		for len(stack) > 0 {
			p := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			x, y := p[0], p[1]
			if x+1 < nx && keptH[x][y] && !visited[x+1][y] {
				visited[x+1][y] = true
				stack = append(stack, [2]int{x + 1, y})
			}
			if x > 0 && keptH[x-1][y] && !visited[x-1][y] {
				visited[x-1][y] = true
				stack = append(stack, [2]int{x - 1, y})
			}
			if y+1 < ny && keptV[x][y] && !visited[x][y+1] {
				visited[x][y+1] = true
				stack = append(stack, [2]int{x, y + 1})
			}
			if y > 0 && keptV[x][y-1] && !visited[x][y-1] {
				visited[x][y-1] = true
				stack = append(stack, [2]int{x, y - 1})
			}
		}
	}
	absorb(0, 0)
	for {
		repaired := false
		for x := 0; x < nx; x++ {
			for y := 0; y < ny; y++ {
				if visited[x][y] {
					continue
				}
				// Bridge to a visited grid neighbor if one exists; the
				// stranded component then joins via the kept edges.
				switch {
				case x > 0 && visited[x-1][y]:
					g.AddBidirectional(ids[x-1][y], ids[x][y], speed)
					keptH[x-1][y] = true
				case x+1 < nx && visited[x+1][y]:
					g.AddBidirectional(ids[x][y], ids[x+1][y], speed)
					keptH[x][y] = true
				case y > 0 && visited[x][y-1]:
					g.AddBidirectional(ids[x][y-1], ids[x][y], speed)
					keptV[x][y-1] = true
				case y+1 < ny && visited[x][y+1]:
					g.AddBidirectional(ids[x][y], ids[x][y+1], speed)
					keptV[x][y] = true
				default:
					continue
				}
				absorb(x, y)
				repaired = true
			}
		}
		if !repaired {
			return // every pocket reachable: nothing left to bridge
		}
	}
}

// NodeAt returns the id of the node nearest to p (linear scan; the
// generator graphs are small). ok is false for an empty graph.
func (g *Graph) NodeAt(p geo.Point) (NodeID, bool) {
	if len(g.nodes) == 0 {
		return 0, false
	}
	best, bestD := NodeID(0), math.Inf(1)
	for _, n := range g.nodes {
		if d := n.Pos.DistSq(p); d < bestD {
			best, bestD = n.ID, d
		}
	}
	return best, true
}
