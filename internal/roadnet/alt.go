package roadnet

import "math"

// ALT (A*, Landmarks, Triangle inequality) preprocessing: a handful of
// landmark nodes are chosen by farthest-point selection, and exact
// shortest-path distances from and to every landmark are tabulated with
// one forward and one reverse Dijkstra sweep each. At query time the
// triangle inequality turns the tables into lower bounds on d(v, t):
//
//	d(v, t) >= d(L, t) - d(L, v)   (forward table)
//	d(v, t) >= d(v, L) - d(t, L)   (reverse table)
//
// The max over landmarks (and the Euclidean bound) steers A* much
// tighter than Euclidean distance alone on grids with removed streets,
// where geometry badly underestimates detours.
//
// Bounds are scaled by (1 - altSlack) so that float64 rounding in the
// subtraction can never push a bound above the true distance —
// admissibility is preserved to well below any tolerance in use.

// altLandmarks bounds how many landmarks are tabulated. Preprocessing
// costs two full sweeps per landmark; 8 is plenty for the graph sizes
// sidq generates, growing to 16 on larger networks.
const (
	altMinNodes = 32 // below this, plain Euclidean A* wins
	// Above altMaxNodes the landmark tables are skipped: 2*16 full
	// sweeps plus 16 O(n) vectors per landmark stop paying off once the
	// contraction hierarchy serves the distance queries, and on
	// continental-scale graphs they dominate build time and memory.
	// A* falls back to the Euclidean bound — results are identical,
	// only the search's steering changes.
	altMaxNodes = 1 << 18
	altSlack    = 1e-9
)

type altData struct {
	landmarks []int32
	from      [][]float64 // from[l][v] = d(landmark_l, v)
	to        [][]float64 // to[l][v]   = d(v, landmark_l)
}

func altLandmarkCount(n int) int {
	if n >= 4096 {
		return 16
	}
	return 8
}

// buildALT tabulates landmark distance vectors for e, or returns nil
// when the graph is too small for ALT to pay for itself.
func buildALT(e *Engine) *altData {
	n := len(e.pos)
	if n < altMinNodes || n > altMaxNodes {
		return nil
	}
	l := altLandmarkCount(n)
	if l > n {
		l = n
	}
	// Reverse CSR for the "to landmark" sweeps.
	roff, rto, rw := reverseCSR(e)
	a := &altData{}
	// Farthest-point selection seeded at node 0: each new landmark is
	// the node maximizing the minimum forward distance from the chosen
	// set, which spreads landmarks to the periphery.
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = math.Inf(1)
	}
	cur := int32(0)
	for len(a.landmarks) < l {
		fwd := sweepAll(e.off, e.to, e.w, cur)
		bwd := sweepAll(roff, rto, rw, cur)
		a.landmarks = append(a.landmarks, cur)
		a.from = append(a.from, fwd)
		a.to = append(a.to, bwd)
		next, best := int32(-1), -1.0
		for v := 0; v < n; v++ {
			if fwd[v] < minDist[v] {
				minDist[v] = fwd[v]
			}
			if !math.IsInf(minDist[v], 1) && minDist[v] > best {
				best = minDist[v]
				next = int32(v)
			}
		}
		if next < 0 || next == cur {
			break
		}
		cur = next
	}
	return a
}

// lowerBound returns the best landmark lower bound on d(v, dst).
func (a *altData) lowerBound(v, dst int32) float64 {
	var best float64
	for l := range a.landmarks {
		// Forward: d(L, dst) - d(L, v).
		if b := a.from[l][dst] - a.from[l][v]; b > best && !math.IsNaN(b) {
			best = b
		}
		// Reverse: d(v, L) - d(dst, L).
		if b := a.to[l][v] - a.to[l][dst]; b > best && !math.IsNaN(b) {
			best = b
		}
	}
	if math.IsInf(best, 1) {
		// One side is provably unreachable; +Inf is an admissible (and
		// exact) bound, and A* will report no path.
		return best
	}
	return best * (1 - altSlack)
}

// reverseCSR builds the transposed adjacency of e (weights preserved).
func reverseCSR(e *Engine) (off, to []int32, w []float64) {
	n := len(e.pos)
	m := len(e.w)
	off = make([]int32, n+1)
	to = make([]int32, m)
	w = make([]float64, m)
	for _, v := range e.to {
		off[v+1]++
	}
	for i := 0; i < n; i++ {
		off[i+1] += off[i]
	}
	fill := make([]int32, n)
	for u := 0; u < n; u++ {
		for i := e.off[u]; i < e.off[u+1]; i++ {
			v := e.to[i]
			slot := off[v] + fill[v]
			fill[v]++
			to[slot] = int32(u)
			w[slot] = e.w[i]
		}
	}
	return off, to, w
}

// sweepAll runs a full Dijkstra from src over the given CSR arrays and
// returns the distance vector (+Inf for unreachable nodes). Used only
// at preprocessing time, so it allocates its own state.
func sweepAll(off, to []int32, w []float64, src int32) []float64 {
	n := len(off) - 1
	dist := make([]float64, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	var h nodeHeap
	h.push(src, 0)
	for h.len() > 0 {
		cur := h.pop()
		if done[cur.node] {
			continue
		}
		done[cur.node] = true
		d := dist[cur.node]
		for i := off[cur.node]; i < off[cur.node+1]; i++ {
			v := to[i]
			if done[v] {
				continue
			}
			if nd := d + w[i]; nd < dist[v] {
				dist[v] = nd
				h.push(v, nd)
			}
		}
	}
	return dist
}
