package roadnet

import (
	"math"
	"sync"

	"sidq/internal/geo"
)

// Snap is the result of projecting a point onto the road network.
type Snap struct {
	Edge  EdgeID
	Param float64   // position along the edge in [0, 1]
	Pos   geo.Point // snapped position
	Dist  float64   // distance from the query point to Pos
}

// Snapper answers nearest-edge queries against a graph using a uniform
// grid over edge bounding rectangles. Build once, query many times.
// Queries are safe for concurrent use: per-query scratch (the
// epoch-stamped dedup array and candidate buffers) is pooled.
type Snapper struct {
	g        *Graph
	cellSize float64
	bounds   geo.Rect
	nx, ny   int
	cells    [][]EdgeID
	scratch  sync.Pool // *snapScratch
}

// snapScratch is the reusable per-query state: seen[eid] == epoch
// marks an edge as already examined this query, so restarting a query
// costs one counter increment instead of clearing (or reallocating)
// the whole array.
type snapScratch struct {
	seen  []uint32
	epoch uint32
	ring  []EdgeID
	snaps []Snap
}

func (s *Snapper) getScratch() *snapScratch {
	scr, _ := s.scratch.Get().(*snapScratch)
	if scr == nil {
		scr = &snapScratch{seen: make([]uint32, s.g.NumEdges())}
	}
	scr.epoch++
	if scr.epoch == 0 { // counter wrapped: stale marks are ambiguous
		clear(scr.seen)
		scr.epoch = 1
	}
	return scr
}

// NewSnapper builds a snapper with the given grid cell size (meters).
// A non-positive cell size defaults to 100 m.
func NewSnapper(g *Graph, cellSize float64) *Snapper {
	if cellSize <= 0 {
		cellSize = 100
	}
	bounds := g.Bounds().Expand(cellSize)
	s := &Snapper{g: g, cellSize: cellSize, bounds: bounds}
	s.nx = int(math.Ceil(bounds.Width()/cellSize)) + 1
	s.ny = int(math.Ceil(bounds.Height()/cellSize)) + 1
	if s.nx < 1 {
		s.nx = 1
	}
	if s.ny < 1 {
		s.ny = 1
	}
	s.cells = make([][]EdgeID, s.nx*s.ny)
	for _, e := range g.edges {
		a := g.nodes[e.From].Pos
		b := g.nodes[e.To].Pos
		r := geo.RectFromPoints(a, b)
		lox, loy := s.cellOf(r.Min)
		hix, hiy := s.cellOf(r.Max)
		for cy := loy; cy <= hiy; cy++ {
			for cx := lox; cx <= hix; cx++ {
				i := cy*s.nx + cx
				s.cells[i] = append(s.cells[i], e.ID)
			}
		}
	}
	return s
}

func (s *Snapper) cellOf(p geo.Point) (int, int) {
	cx := int((p.X - s.bounds.Min.X) / s.cellSize)
	cy := int((p.Y - s.bounds.Min.Y) / s.cellSize)
	if cx < 0 {
		cx = 0
	}
	if cx >= s.nx {
		cx = s.nx - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= s.ny {
		cy = s.ny - 1
	}
	return cx, cy
}

// Nearest returns the snap of p onto the nearest edge. ok is false for
// a graph with no edges.
func (s *Snapper) Nearest(p geo.Point) (Snap, bool) {
	if s.g.NumEdges() == 0 {
		return Snap{}, false
	}
	cx, cy := s.cellOf(p)
	best := Snap{Dist: math.Inf(1)}
	maxRing := s.nx
	if s.ny > maxRing {
		maxRing = s.ny
	}
	scr := s.getScratch()
	defer s.scratch.Put(scr)
	for ring := 0; ring <= maxRing; ring++ {
		if !math.IsInf(best.Dist, 1) {
			minPossible := (float64(ring) - 1) * s.cellSize
			if minPossible > best.Dist {
				break
			}
		}
		scr.ring = s.ringEdges(cx, cy, ring, scr.ring[:0])
		for _, eid := range scr.ring {
			if scr.seen[eid] == scr.epoch {
				continue
			}
			scr.seen[eid] = scr.epoch
			e := s.g.edges[eid]
			seg := geo.Segment{A: s.g.nodes[e.From].Pos, B: s.g.nodes[e.To].Pos}
			t := seg.ClosestParam(p)
			pos := seg.Interpolate(t)
			if d := pos.Dist(p); d < best.Dist {
				best = Snap{Edge: eid, Param: t, Pos: pos, Dist: d}
			}
		}
	}
	return best, !math.IsInf(best.Dist, 1)
}

// KNearest returns up to k snaps onto distinct edges, ordered by
// increasing distance. It is used by map-matching to form candidate
// sets.
func (s *Snapper) KNearest(p geo.Point, k int) []Snap {
	if k <= 0 || s.g.NumEdges() == 0 {
		return nil
	}
	// Collect candidate snaps by expanding rings until enough distinct
	// edges have been seen and the ring lower bound exceeds the k-th
	// best distance. The working set lives in pooled scratch; only the
	// returned k-slice is allocated.
	scr := s.getScratch()
	defer s.scratch.Put(scr)
	snaps := scr.snaps[:0]
	cx, cy := s.cellOf(p)
	maxRing := s.nx
	if s.ny > maxRing {
		maxRing = s.ny
	}
	kthDist := math.Inf(1)
	for ring := 0; ring <= maxRing; ring++ {
		if len(snaps) >= k {
			minPossible := (float64(ring) - 1) * s.cellSize
			if minPossible > kthDist {
				break
			}
		}
		scr.ring = s.ringEdges(cx, cy, ring, scr.ring[:0])
		for _, eid := range scr.ring {
			if scr.seen[eid] == scr.epoch {
				continue
			}
			scr.seen[eid] = scr.epoch
			e := s.g.edges[eid]
			seg := geo.Segment{A: s.g.nodes[e.From].Pos, B: s.g.nodes[e.To].Pos}
			t := seg.ClosestParam(p)
			pos := seg.Interpolate(t)
			snaps = append(snaps, Snap{Edge: eid, Param: t, Pos: pos, Dist: pos.Dist(p)})
		}
		sortSnaps(snaps)
		if len(snaps) > 4*k {
			snaps = snaps[:4*k] // keep a buffer beyond k for later rings
		}
		if len(snaps) >= k {
			kthDist = snaps[k-1].Dist
		}
	}
	scr.snaps = snaps // return grown capacity to the pool
	if len(snaps) > k {
		snaps = snaps[:k]
	}
	out := make([]Snap, len(snaps))
	copy(out, snaps)
	return out
}

// ringEdges appends to buf the edge ids stored in cells at Chebyshev
// distance ring from (cx, cy), in deterministic sweep order, and
// returns the extended buffer. Ids may repeat across cells; callers
// dedup with the scratch epoch array.
func (s *Snapper) ringEdges(cx, cy, ring int, buf []EdgeID) []EdgeID {
	if ring == 0 {
		return append(buf, s.cells[cy*s.nx+cx]...)
	}
	cell := func(x, y int) {
		if x < 0 || x >= s.nx || y < 0 || y >= s.ny {
			return
		}
		buf = append(buf, s.cells[y*s.nx+x]...)
	}
	for dx := -ring; dx <= ring; dx++ {
		if dx == -ring || dx == ring {
			for dy := -ring; dy <= ring; dy++ {
				cell(cx+dx, cy+dy)
			}
		} else {
			cell(cx+dx, cy-ring)
			cell(cx+dx, cy+ring)
		}
	}
	return buf
}

func sortSnaps(s []Snap) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].Dist < s[j-1].Dist; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// PointAlongEdge returns the position at parameter t in [0,1] along an
// edge's straight-line embedding.
func (g *Graph) PointAlongEdge(eid EdgeID, t float64) geo.Point {
	e := g.edges[eid]
	return geo.Segment{A: g.nodes[e.From].Pos, B: g.nodes[e.To].Pos}.Interpolate(t)
}

// NetworkDist returns the shortest network distance between a position
// on edge ea (at parameter ta) and a position on edge eb (at parameter
// tb), routing through the edge endpoints. Same-edge forward movement
// is measured along the edge; backward movement on a directed edge
// loops around via the endpoints. The distance core d(ea.To, eb.From)
// is served from the engine's route cache, so repeated queries over
// the same edge pair (any parameters) cost one search total.
func (g *Graph) NetworkDist(ea EdgeID, ta float64, eb EdgeID, tb float64) (float64, error) {
	return g.Engine().NetworkDist(ea, ta, eb, tb)
}
