package roadnet

import (
	"math"

	"sidq/internal/geo"
)

// Snap is the result of projecting a point onto the road network.
type Snap struct {
	Edge  EdgeID
	Param float64   // position along the edge in [0, 1]
	Pos   geo.Point // snapped position
	Dist  float64   // distance from the query point to Pos
}

// Snapper answers nearest-edge queries against a graph using a uniform
// grid over edge bounding rectangles. Build once, query many times.
type Snapper struct {
	g        *Graph
	cellSize float64
	bounds   geo.Rect
	nx, ny   int
	cells    [][]EdgeID
}

// NewSnapper builds a snapper with the given grid cell size (meters).
// A non-positive cell size defaults to 100 m.
func NewSnapper(g *Graph, cellSize float64) *Snapper {
	if cellSize <= 0 {
		cellSize = 100
	}
	bounds := g.Bounds().Expand(cellSize)
	s := &Snapper{g: g, cellSize: cellSize, bounds: bounds}
	s.nx = int(math.Ceil(bounds.Width()/cellSize)) + 1
	s.ny = int(math.Ceil(bounds.Height()/cellSize)) + 1
	if s.nx < 1 {
		s.nx = 1
	}
	if s.ny < 1 {
		s.ny = 1
	}
	s.cells = make([][]EdgeID, s.nx*s.ny)
	for _, e := range g.edges {
		a := g.nodes[e.From].Pos
		b := g.nodes[e.To].Pos
		r := geo.RectFromPoints(a, b)
		lox, loy := s.cellOf(r.Min)
		hix, hiy := s.cellOf(r.Max)
		for cy := loy; cy <= hiy; cy++ {
			for cx := lox; cx <= hix; cx++ {
				i := cy*s.nx + cx
				s.cells[i] = append(s.cells[i], e.ID)
			}
		}
	}
	return s
}

func (s *Snapper) cellOf(p geo.Point) (int, int) {
	cx := int((p.X - s.bounds.Min.X) / s.cellSize)
	cy := int((p.Y - s.bounds.Min.Y) / s.cellSize)
	if cx < 0 {
		cx = 0
	}
	if cx >= s.nx {
		cx = s.nx - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= s.ny {
		cy = s.ny - 1
	}
	return cx, cy
}

// Nearest returns the snap of p onto the nearest edge. ok is false for
// a graph with no edges.
func (s *Snapper) Nearest(p geo.Point) (Snap, bool) {
	if s.g.NumEdges() == 0 {
		return Snap{}, false
	}
	cx, cy := s.cellOf(p)
	best := Snap{Dist: math.Inf(1)}
	maxRing := s.nx
	if s.ny > maxRing {
		maxRing = s.ny
	}
	seen := map[EdgeID]bool{}
	for ring := 0; ring <= maxRing; ring++ {
		if !math.IsInf(best.Dist, 1) {
			minPossible := (float64(ring) - 1) * s.cellSize
			if minPossible > best.Dist {
				break
			}
		}
		s.visitRing(cx, cy, ring, func(eid EdgeID) {
			if seen[eid] {
				return
			}
			seen[eid] = true
			e := s.g.edges[eid]
			seg := geo.Segment{A: s.g.nodes[e.From].Pos, B: s.g.nodes[e.To].Pos}
			t := seg.ClosestParam(p)
			pos := seg.Interpolate(t)
			if d := pos.Dist(p); d < best.Dist {
				best = Snap{Edge: eid, Param: t, Pos: pos, Dist: d}
			}
		})
	}
	return best, !math.IsInf(best.Dist, 1)
}

// KNearest returns up to k snaps onto distinct edges, ordered by
// increasing distance. It is used by map-matching to form candidate
// sets.
func (s *Snapper) KNearest(p geo.Point, k int) []Snap {
	if k <= 0 || s.g.NumEdges() == 0 {
		return nil
	}
	// Collect candidate snaps by expanding rings until enough distinct
	// edges have been seen and the ring lower bound exceeds the k-th
	// best distance.
	var snaps []Snap
	seen := map[EdgeID]bool{}
	cx, cy := s.cellOf(p)
	maxRing := s.nx
	if s.ny > maxRing {
		maxRing = s.ny
	}
	kthDist := math.Inf(1)
	for ring := 0; ring <= maxRing; ring++ {
		if len(snaps) >= k {
			minPossible := (float64(ring) - 1) * s.cellSize
			if minPossible > kthDist {
				break
			}
		}
		s.visitRing(cx, cy, ring, func(eid EdgeID) {
			if seen[eid] {
				return
			}
			seen[eid] = true
			e := s.g.edges[eid]
			seg := geo.Segment{A: s.g.nodes[e.From].Pos, B: s.g.nodes[e.To].Pos}
			t := seg.ClosestParam(p)
			pos := seg.Interpolate(t)
			snaps = append(snaps, Snap{Edge: eid, Param: t, Pos: pos, Dist: pos.Dist(p)})
		})
		sortSnaps(snaps)
		if len(snaps) > 4*k {
			snaps = snaps[:4*k] // keep a buffer beyond k for later rings
		}
		if len(snaps) >= k {
			kthDist = snaps[k-1].Dist
		}
	}
	if len(snaps) > k {
		snaps = snaps[:k]
	}
	return snaps
}

// visitRing calls fn for each edge id stored in cells at Chebyshev
// distance ring from (cx, cy).
func (s *Snapper) visitRing(cx, cy, ring int, fn func(EdgeID)) {
	if ring == 0 {
		for _, eid := range s.cells[cy*s.nx+cx] {
			fn(eid)
		}
		return
	}
	for dx := -ring; dx <= ring; dx++ {
		var dys []int
		if dx == -ring || dx == ring {
			for dy := -ring; dy <= ring; dy++ {
				dys = append(dys, dy)
			}
		} else {
			dys = []int{-ring, ring}
		}
		for _, dy := range dys {
			x, y := cx+dx, cy+dy
			if x < 0 || x >= s.nx || y < 0 || y >= s.ny {
				continue
			}
			for _, eid := range s.cells[y*s.nx+x] {
				fn(eid)
			}
		}
	}
}

func sortSnaps(s []Snap) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].Dist < s[j-1].Dist; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// PointAlongEdge returns the position at parameter t in [0,1] along an
// edge's straight-line embedding.
func (g *Graph) PointAlongEdge(eid EdgeID, t float64) geo.Point {
	e := g.edges[eid]
	return geo.Segment{A: g.nodes[e.From].Pos, B: g.nodes[e.To].Pos}.Interpolate(t)
}

// NetworkDist returns the shortest network distance between a position
// on edge ea (at parameter ta) and a position on edge eb (at parameter
// tb), routing through the edge endpoints. Same-edge forward movement
// is measured along the edge.
func (g *Graph) NetworkDist(ea EdgeID, ta float64, eb EdgeID, tb float64) (float64, error) {
	if ea == eb {
		e := g.edges[ea]
		if tb >= ta {
			return (tb - ta) * e.Length, nil
		}
		// Backward on a directed edge: must loop around via endpoints.
	}
	a := g.edges[ea]
	b := g.edges[eb]
	// Distance = remaining length of a + shortest(a.To -> b.From) + offset into b.
	p, err := g.ShortestPath(a.To, b.From)
	if err != nil {
		return 0, err
	}
	return (1-ta)*a.Length + p.Dist + tb*b.Length, nil
}
