package roadnet

import (
	"fmt"
	"math"
	"sync"

	"sidq/internal/geo"
)

// Engine is the compiled road-network query engine: a flattened CSR
// (compressed sparse row) snapshot of a Graph's adjacency, plus ALT
// landmark tables, a pooled set of epoch-stamped search scratch arrays,
// and a sharded route cache. It is built once per graph revision (see
// Graph.Engine) and is safe for concurrent queries from many
// goroutines: every search borrows a private scratch from a pool, and
// the route cache is internally synchronized.
//
// All distances are exact: Engine searches relax edges in the same
// order, with the same float64 arithmetic and the same heap
// tie-breaking, as the legacy per-query Dijkstra, so path and distance
// results are byte-identical — only the constant factors change.
type Engine struct {
	// CSR adjacency: the out-edges of node u occupy slots
	// off[u]..off[u+1] in to/eid/w, preserving Graph adjacency order.
	off []int32
	to  []int32   // target node per slot
	eid []int32   // edge id per slot
	w   []float64 // edge length per slot

	pos   []geo.Point // node positions (snapshot, for heuristics)
	efrom []int32     // edge id -> source node (for path reconstruction)
	eto   []int32     // edge id -> target node
	elen  []float64   // edge id -> length

	alt *altData // landmark lower-bound tables (nil for tiny or huge graphs)
	ch  *chData  // contraction hierarchy (nil for tiny graphs)

	cache     *RouteCache
	scratch   sync.Pool // *searchScratch
	chScratch sync.Pool // *chScratch
	ctr       engineCounters
}

// newEngine compiles g. The graph must not be mutated while the engine
// is in use (Graph.AddNode/AddEdge invalidate the cached engine).
func newEngine(g *Graph) *Engine {
	n := len(g.nodes)
	m := len(g.edges)
	e := &Engine{
		off:   make([]int32, n+1),
		to:    make([]int32, 0, m),
		eid:   make([]int32, 0, m),
		w:     make([]float64, 0, m),
		pos:   make([]geo.Point, n),
		efrom: make([]int32, m),
		eto:   make([]int32, m),
		elen:  make([]float64, m),
	}
	for i, nd := range g.nodes {
		e.pos[i] = nd.Pos
	}
	for i, ed := range g.edges {
		e.efrom[i] = int32(ed.From)
		e.eto[i] = int32(ed.To)
		e.elen[i] = ed.Length
	}
	for u := 0; u < n; u++ {
		e.off[u] = int32(len(e.to))
		for _, id := range g.out[u] {
			ed := g.edges[id]
			e.to = append(e.to, int32(ed.To))
			e.eid = append(e.eid, int32(id))
			e.w = append(e.w, ed.Length)
		}
	}
	e.off[n] = int32(len(e.to))
	e.scratch.New = func() any { return newSearchScratch(n) }
	e.chScratch.New = func() any { return newCHScratch(n) }
	e.alt = buildALT(e)
	if n >= chAutoNodes {
		e.ch = buildCH(e)
	}
	e.cache = NewRouteCache(routeCacheCapacity(m))
	return e
}

// routeCacheCapacity sizes the default route cache to the graph: enough
// to hold the working set of a map-matching pass without letting huge
// graphs pin unbounded memory.
func routeCacheCapacity(numEdges int) int {
	c := 8 * numEdges
	if c < 1024 {
		c = 1024
	}
	if c > 1<<16 {
		c = 1 << 16
	}
	return c
}

// NumNodes returns the node count of the compiled snapshot.
func (e *Engine) NumNodes() int { return len(e.pos) }

// Cache returns the engine's route cache (never nil).
func (e *Engine) Cache() *RouteCache { return e.cache }

// searchScratch is the per-search state, reused across queries via the
// engine pool. Validity of dist/prev entries is tracked by epoch
// stamps, so starting a new search is O(1) — no clearing, no per-query
// allocation.
type searchScratch struct {
	dist   []float64
	prev   []int32  // best incoming edge id, -1 = none
	seen   []uint32 // epoch when dist/prev became valid
	done   []uint32 // epoch when the node was settled
	target []uint32 // epoch marks for ManyDist target membership
	epoch  uint32
	heap   nodeHeap
}

func newSearchScratch(n int) *searchScratch {
	return &searchScratch{
		dist:   make([]float64, n),
		prev:   make([]int32, n),
		seen:   make([]uint32, n),
		done:   make([]uint32, n),
		target: make([]uint32, n),
	}
}

// begin starts a new search epoch, handling uint32 wraparound.
func (s *searchScratch) begin() {
	if s.epoch == math.MaxUint32 {
		for i := range s.seen {
			s.seen[i] = 0
			s.done[i] = 0
			s.target[i] = 0
		}
		s.epoch = 0
	}
	s.epoch++
	s.heap.reset()
}

func (s *searchScratch) distOf(v int32) float64 {
	if s.seen[v] == s.epoch {
		return s.dist[v]
	}
	return math.Inf(1)
}

func (e *Engine) getScratch() *searchScratch {
	s := e.scratch.Get().(*searchScratch)
	if len(s.dist) < len(e.pos) { // defensive; pool is per-engine
		s = newSearchScratch(len(e.pos))
	}
	return s
}

func (e *Engine) putScratch(s *searchScratch) { e.scratch.Put(s) }

func (e *Engine) badNodes(a, b NodeID) bool {
	return int(a) >= len(e.pos) || int(b) >= len(e.pos) || a < 0 || b < 0
}

// route runs the heap search from a to b with heuristic h (nil for
// Dijkstra) and reconstructs the path. It replicates the legacy search
// loop exactly — same relaxation order, same strict-improvement rule,
// same heap tie-breaking — so results are byte-identical to it.
func (e *Engine) route(a, b NodeID, h func(int32) float64) (Path, error) {
	if e.badNodes(a, b) {
		return Path{}, fmt.Errorf("roadnet: search bad nodes %d->%d (have %d): %w", a, b, len(e.pos), ErrNoPath)
	}
	s := e.getScratch()
	defer e.putScratch(s)
	var pops uint64
	defer func() { obsAdd(&e.ctr.heapPops, &pkgObs.heapPops, pops) }()
	s.begin()
	src, dst := int32(a), int32(b)
	s.dist[src] = 0
	s.prev[src] = -1
	s.seen[src] = s.epoch
	if h != nil {
		s.heap.push(src, h(src))
	} else {
		s.heap.push(src, 0)
	}
	for s.heap.len() > 0 {
		cur := s.heap.pop()
		pops++
		if s.done[cur.node] == s.epoch {
			continue
		}
		s.done[cur.node] = s.epoch
		if cur.node == dst {
			break
		}
		d := s.dist[cur.node]
		for i := e.off[cur.node]; i < e.off[cur.node+1]; i++ {
			v := e.to[i]
			if s.done[v] == s.epoch {
				continue
			}
			nd := d + e.w[i]
			if nd < s.distOf(v) {
				s.dist[v] = nd
				s.prev[v] = e.eid[i]
				s.seen[v] = s.epoch
				if h != nil {
					s.heap.push(v, nd+h(v))
				} else {
					s.heap.push(v, nd)
				}
			}
		}
	}
	if math.IsInf(s.distOf(dst), 1) {
		return Path{}, fmt.Errorf("roadnet: %d -> %d: %w", a, b, ErrNoPath)
	}
	// Reconstruct (same construction as the legacy search).
	var edges []EdgeID
	nodes := []NodeID{b}
	for cur := dst; cur != src; {
		eid := s.prev[cur]
		edges = append(edges, EdgeID(eid))
		cur = e.efrom[eid]
		nodes = append(nodes, NodeID(cur))
	}
	reverseEdges(edges)
	reverseNodes(nodes)
	return Path{Nodes: nodes, Edges: edges, Dist: s.dist[dst]}, nil
}

// ShortestPath returns the minimum-length path from a to b (Dijkstra).
func (e *Engine) ShortestPath(a, b NodeID) (Path, error) {
	obsAdd(&e.ctr.dijkstra, &pkgObs.dijkstra, 1)
	return e.route(a, b, nil)
}

// AStar returns the minimum-length path from a to b using A* under the
// max of the Euclidean heuristic and the ALT (A*, landmarks, triangle
// inequality) lower bounds. Both are admissible and consistent, so the
// returned distance equals Dijkstra's.
func (e *Engine) AStar(a, b NodeID) (Path, error) {
	if e.badNodes(a, b) {
		return Path{}, fmt.Errorf("roadnet: search bad nodes %d->%d (have %d): %w", a, b, len(e.pos), ErrNoPath)
	}
	if e.alt != nil {
		obsAdd(&e.ctr.astarALT, &pkgObs.astarALT, 1)
	} else {
		obsAdd(&e.ctr.astarEuclid, &pkgObs.astarEuclid, 1)
	}
	return e.route(a, b, e.heuristic(int32(b)))
}

// heuristic returns the admissible lower-bound function toward dst.
func (e *Engine) heuristic(dst int32) func(int32) float64 {
	goal := e.pos[dst]
	if e.alt == nil {
		return func(v int32) float64 { return e.pos[v].Dist(goal) }
	}
	alt := e.alt
	return func(v int32) float64 {
		h := e.pos[v].Dist(goal)
		if lb := alt.lowerBound(v, dst); lb > h {
			h = lb
		}
		return h
	}
}

// Dist returns the shortest network distance from a to b without
// reconstructing the path (and therefore without allocating). The
// value is identical to ShortestPath(a, b).Dist. When the engine has a
// contraction hierarchy it is served by the bidirectional upward
// search; otherwise by one bounded Dijkstra sweep. Both produce the
// same bits (see ch.go).
func (e *Engine) Dist(a, b NodeID) (float64, error) {
	if e.badNodes(a, b) {
		return 0, fmt.Errorf("roadnet: search bad nodes %d->%d (have %d): %w", a, b, len(e.pos), ErrNoPath)
	}
	if e.ch != nil {
		obsAdd(&e.ctr.chDist, &pkgObs.chDist, 1)
		s := e.getCHScratch()
		d, ok := e.chPointDist(s, int32(a), int32(b))
		e.putCHScratch(s)
		if !ok {
			return 0, fmt.Errorf("roadnet: %d -> %d: %w", a, b, ErrNoPath)
		}
		return d, nil
	}
	s := e.getScratch()
	defer e.putScratch(s)
	e.manyDist(s, int32(a), func(mark func(int32)) { mark(int32(b)) }, math.Inf(1), nil)
	if s.done[int32(b)] != s.epoch {
		return 0, fmt.Errorf("roadnet: %d -> %d: %w", a, b, ErrNoPath)
	}
	return s.dist[int32(b)], nil
}

// CHDist is the explicit contraction-hierarchy point-to-point query:
// identical contract (and identical bits) to Dist, but it reports
// ErrNoPath with ok=false semantics when the engine has no hierarchy
// instead of falling back, so tests and benchmarks can pin the CH code
// path specifically. Production callers should use Dist.
func (e *Engine) CHDist(a, b NodeID) (float64, error) {
	if e.ch == nil {
		return 0, fmt.Errorf("roadnet: CHDist %d -> %d: no contraction hierarchy (graph below %d nodes)", a, b, chAutoNodes)
	}
	return e.Dist(a, b)
}

// HasCH reports whether the engine compiled a contraction hierarchy.
func (e *Engine) HasCH() bool { return e.ch != nil }

// ManyDist computes the shortest network distance from source to every
// target in one truncated Dijkstra sweep, writing the distances into
// out (which must have len(targets)). Unreachable targets — and, when
// maxCost is finite, targets farther than maxCost — get +Inf. It
// returns the number of targets reached.
//
// The search stops as soon as all distinct targets are settled or the
// frontier exceeds maxCost, so K nearby targets cost roughly one
// bounded search instead of K full ones. Distances are exactly the
// values ShortestPath would return: truncation only replaces values
// that would exceed maxCost with +Inf.
func (e *Engine) ManyDist(source NodeID, targets []NodeID, maxCost float64, out []float64) int {
	if len(out) < len(targets) {
		panic("roadnet: ManyDist out slice too short")
	}
	if int(source) >= len(e.pos) || source < 0 {
		for i := range targets {
			out[i] = math.Inf(1)
		}
		return 0
	}
	if e.ch != nil {
		return e.chManyDistNodes(source, targets, maxCost, out)
	}
	s := e.getScratch()
	defer e.putScratch(s)
	e.manyDist(s, int32(source), func(mark func(int32)) {
		for _, t := range targets {
			if int(t) < len(e.pos) && t >= 0 {
				mark(int32(t))
			}
		}
	}, maxCost, nil)
	reached := 0
	inf := math.Inf(1)
	for i, t := range targets {
		if int(t) < len(e.pos) && t >= 0 && s.done[int32(t)] == s.epoch {
			out[i] = s.dist[int32(t)]
			reached++
		} else {
			out[i] = inf
		}
	}
	return reached
}

// CHManyDist is the explicit contraction-hierarchy one-to-many query —
// same contract and same bits as ManyDist, which delegates here
// whenever a hierarchy exists. Exposed (like CHDist) so tests and
// benchmarks can assert the hierarchy is the code path being measured.
func (e *Engine) CHManyDist(source NodeID, targets []NodeID, maxCost float64, out []float64) int {
	if e.ch == nil {
		return -1
	}
	if len(out) < len(targets) {
		panic("roadnet: CHManyDist out slice too short")
	}
	if int(source) >= len(e.pos) || source < 0 {
		for i := range targets {
			out[i] = math.Inf(1)
		}
		return 0
	}
	return e.chManyDistNodes(source, targets, maxCost, out)
}

// chManyDistNodes serves the ManyDist contract from the hierarchy: a
// shared forward upward search, one pruned backward search per target,
// and the exact maxCost filter applied to the re-accumulated distances
// (the searches themselves run unbounded — upward search spaces are
// small, and filtering exact values afterwards keeps the boundary
// semantics bit-identical to the truncated flat sweep, which settles
// targets at exactly maxCost).
func (e *Engine) chManyDistNodes(source NodeID, targets []NodeID, maxCost float64, out []float64) int {
	obsAdd(&e.ctr.chMany, &pkgObs.chMany, 1)
	s := e.getCHScratch()
	defer e.putCHScratch(s)
	e.chForward(s, int32(source))
	bounded := !math.IsInf(maxCost, 1)
	inf := math.Inf(1)
	reached := 0
	for i, t := range targets {
		if int(t) >= len(e.pos) || t < 0 {
			out[i] = inf
			continue
		}
		d, ok := e.chBackwardOne(s, int32(t))
		if !ok || (bounded && d > maxCost) {
			out[i] = inf
			continue
		}
		out[i] = d
		reached++
	}
	return reached
}

// manyDist is the shared truncated one-to-many sweep. markTargets is
// called once with a mark function to stamp target nodes; the sweep
// stops when every distinct marked node is settled or the frontier
// passes maxCost. onSettle, if non-nil, observes every settled target.
// After return, s.done/s.dist (at s.epoch) hold the settled set.
func (e *Engine) manyDist(s *searchScratch, src int32, markTargets func(mark func(int32)), maxCost float64, onSettle func(node int32, d float64)) int {
	obsAdd(&e.ctr.manySweeps, &pkgObs.manySweeps, 1)
	s.begin()
	remaining := 0
	markTargets(func(t int32) {
		if s.target[t] != s.epoch {
			s.target[t] = s.epoch
			remaining++
		}
	})
	settled := 0
	if remaining == 0 {
		return 0
	}
	s.dist[src] = 0
	s.prev[src] = -1
	s.seen[src] = s.epoch
	s.heap.push(src, 0)
	bounded := !math.IsInf(maxCost, 1)
	var pops uint64
	defer func() { obsAdd(&e.ctr.heapPops, &pkgObs.heapPops, pops) }()
	for s.heap.len() > 0 {
		cur := s.heap.pop()
		pops++
		if s.done[cur.node] == s.epoch {
			continue
		}
		if bounded && cur.prio > maxCost {
			break // frontier is monotone: nothing closer remains
		}
		s.done[cur.node] = s.epoch
		if s.target[cur.node] == s.epoch {
			settled++
			if onSettle != nil {
				onSettle(cur.node, s.dist[cur.node])
			}
			if settled == remaining {
				break
			}
		}
		d := s.dist[cur.node]
		for i := e.off[cur.node]; i < e.off[cur.node+1]; i++ {
			v := e.to[i]
			if s.done[v] == s.epoch {
				continue
			}
			nd := d + e.w[i]
			if nd < s.distOf(v) {
				s.dist[v] = nd
				s.prev[v] = e.eid[i]
				s.seen[v] = s.epoch
				s.heap.push(v, nd)
			}
		}
	}
	return settled
}

// SnapDists fills out[j] with the network distance from snap a to each
// snap in bs — the one-to-many replacement for per-pair NetworkDist in
// map matching. Same-edge forward movement is measured along the edge;
// all other pairs route a.Edge.To -> b.Edge.From through the route
// cache, with cache misses resolved by a single bounded one-to-many
// sweep. Pairs with no route (or beyond maxCost) get +Inf.
//
// out must have len(bs). The arithmetic matches NetworkDist exactly,
// so substituting SnapDists for a NetworkDist loop cannot change
// results, only cost.
func (e *Engine) SnapDists(a Snap, bs []Snap, maxCost float64, out []float64) {
	if len(out) < len(bs) {
		panic("roadnet: SnapDists out slice too short")
	}
	u := e.eto[a.Edge]
	rem := (1 - a.Param) * e.elen[a.Edge]
	inf := math.Inf(1)
	// Pass 1: same-edge shortcuts and cache hits; mark misses with NaN.
	misses := 0
	for j, b := range bs {
		if b.Edge == a.Edge && b.Param >= a.Param {
			out[j] = (b.Param - a.Param) * e.elen[a.Edge]
			continue
		}
		v := e.efrom[b.Edge]
		if d, ok, hit := e.cache.get(u, v); hit {
			if ok {
				out[j] = rem + d + b.Param*e.elen[b.Edge]
			} else {
				out[j] = inf
			}
			continue
		}
		out[j] = math.NaN()
		misses++
	}
	if misses == 0 {
		return
	}
	// Pass 2: resolve the missing head nodes — through the contraction
	// hierarchy when one exists, otherwise with one truncated sweep.
	core := maxCost
	if !math.IsInf(core, 1) {
		core -= rem // param offsets are non-negative
		if core < 0 {
			core = 0
		}
	}
	if e.ch != nil {
		e.snapMissesCH(u, bs, core, rem, out)
		return
	}
	s := e.getScratch()
	e.manyDist(s, u, func(mark func(int32)) {
		for j, b := range bs {
			if math.IsNaN(out[j]) {
				mark(e.efrom[b.Edge])
			}
		}
	}, core, nil)
	for j, b := range bs {
		if !math.IsNaN(out[j]) {
			continue
		}
		v := e.efrom[b.Edge]
		if s.done[v] == s.epoch {
			d := s.dist[v]
			e.cache.put(u, v, d, true)
			out[j] = rem + d + b.Param*e.elen[b.Edge]
		} else {
			// Negative-cache definitive "no path" only for unbounded
			// sweeps; a truncated sweep proves nothing about v.
			if math.IsInf(maxCost, 1) {
				e.cache.put(u, v, inf, false)
			}
			out[j] = inf
		}
	}
	e.putScratch(s)
}

// snapMissesCH resolves SnapDists cache misses (out[j] == NaN) through
// the hierarchy: the distinct head nodes are deduplicated, served by
// one shared forward search plus one pruned backward search each, and
// gated by the same d <= core test that decides membership in the
// truncated sweep's settle set — so out is bit-identical to the flat
// path. Unlike the truncated sweep, the CH searches are unbounded, so
// a no-path verdict is definitive for any maxCost and can always be
// negative-cached.
func (e *Engine) snapMissesCH(u int32, bs []Snap, core, rem float64, out []float64) {
	obsAdd(&e.ctr.chMany, &pkgObs.chMany, 1)
	inf := math.Inf(1)
	s := e.getCHScratch()
	s.heads = s.heads[:0]
	for j, b := range bs {
		if !math.IsNaN(out[j]) {
			continue
		}
		v := e.efrom[b.Edge]
		dup := false
		for _, h := range s.heads {
			if h == v {
				dup = true
				break
			}
		}
		if !dup {
			s.heads = append(s.heads, v)
		}
	}
	if cap(s.headD) < len(s.heads) {
		s.headD = make([]float64, len(s.heads))
	}
	s.headD = s.headD[:len(s.heads)]
	e.chForward(s, u)
	for k, v := range s.heads {
		d, ok := e.chBackwardOne(s, v)
		if !ok {
			e.cache.put(u, v, inf, false)
			s.headD[k] = inf
			continue
		}
		s.headD[k] = d
		if d <= core {
			e.cache.put(u, v, d, true)
		}
	}
	for j, b := range bs {
		if !math.IsNaN(out[j]) {
			continue
		}
		v := e.efrom[b.Edge]
		d := inf
		for k, h := range s.heads {
			if h == v {
				d = s.headD[k]
				break
			}
		}
		if !math.IsInf(d, 1) && d <= core {
			out[j] = rem + d + b.Param*e.elen[b.Edge]
		} else {
			out[j] = inf
		}
	}
	e.putCHScratch(s)
}

// NetworkDist is the engine-side single-pair form: the shortest network
// distance between a position on edge ea (parameter ta) and one on eb
// (parameter tb), routed through the endpoints and served from the
// route cache with singleflight de-duplication.
func (e *Engine) NetworkDist(ea EdgeID, ta float64, eb EdgeID, tb float64) (float64, error) {
	if ea == eb && tb >= ta {
		return (tb - ta) * e.elen[ea], nil
	}
	u, v := e.eto[ea], e.efrom[eb]
	d, ok := e.cache.getOrCompute(u, v, func() (float64, bool) {
		dd, err := e.Dist(NodeID(u), NodeID(v))
		if err != nil {
			return math.Inf(1), false
		}
		return dd, true
	})
	if !ok {
		return 0, fmt.Errorf("roadnet: %d -> %d: %w", NodeID(u), NodeID(v), ErrNoPath)
	}
	return (1-ta)*e.elen[ea] + d + tb*e.elen[eb], nil
}
