package roadnet

// Continental-scale synthetic road networks: a lattice of GridCity-like
// street grids ("cities") stitched together by long, fast highway
// segments between adjacent city centers. The result has the two-level
// structure real road networks have — dense local streets, sparse
// long-haul links — which is exactly the shape contraction hierarchies
// exploit, and it scales to millions of directed edges while staying
// strongly connected (every city keeps its boundary ring plus the
// gridStreets repair pass, and the highway mesh connects all cities).

import (
	"math/rand"

	"sidq/internal/geo"
)

// ContinentalOptions configures the continental generator.
type ContinentalOptions struct {
	CitiesX, CitiesY int     // city lattice dimensions (>= 1)
	CityNX, CityNY   int     // intersections per city axis (>= 2)
	Spacing          float64 // meters between intersections (default 100)
	CityGap          float64 // extra meters between adjacent cities (default 20*Spacing)
	Jitter           float64 // positional jitter stddev in meters
	RemoveFrac       float64 // fraction of interior street segments removed
	StreetSpeed      float64 // street free-flow speed, m/s (default ~50 km/h)
	HighwaySpeed     float64 // highway free-flow speed, m/s (default ~120 km/h)
	Seed             int64
}

// Continental generates the multi-city graph. Node and edge insertion
// order is fully determined by the options, so two calls with equal
// options produce identical graphs (and identical engines).
func Continental(opt ContinentalOptions) *Graph {
	if opt.CitiesX < 1 {
		opt.CitiesX = 1
	}
	if opt.CitiesY < 1 {
		opt.CitiesY = 1
	}
	if opt.CityNX < 2 {
		opt.CityNX = 2
	}
	if opt.CityNY < 2 {
		opt.CityNY = 2
	}
	if opt.Spacing <= 0 {
		opt.Spacing = 100
	}
	if opt.CityGap <= 0 {
		opt.CityGap = 20 * opt.Spacing
	}
	if opt.StreetSpeed <= 0 {
		opt.StreetSpeed = 13.9 // ~50 km/h
	}
	if opt.HighwaySpeed <= 0 {
		opt.HighwaySpeed = 33.3 // ~120 km/h
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	g := NewGraph()
	cityW := float64(opt.CityNX-1)*opt.Spacing + opt.CityGap
	cityH := float64(opt.CityNY-1)*opt.Spacing + opt.CityGap
	// Per-city node grids, plus each city's center node for highways.
	centers := make([][]NodeID, opt.CitiesX)
	for cx := 0; cx < opt.CitiesX; cx++ {
		centers[cx] = make([]NodeID, opt.CitiesY)
		for cy := 0; cy < opt.CitiesY; cy++ {
			ox := float64(cx) * cityW
			oy := float64(cy) * cityH
			ids := make([][]NodeID, opt.CityNX)
			for x := 0; x < opt.CityNX; x++ {
				ids[x] = make([]NodeID, opt.CityNY)
				for y := 0; y < opt.CityNY; y++ {
					jx := rng.NormFloat64() * opt.Jitter
					jy := rng.NormFloat64() * opt.Jitter
					ids[x][y] = g.AddNode(geo.Pt(ox+float64(x)*opt.Spacing+jx, oy+float64(y)*opt.Spacing+jy))
				}
			}
			gridStreets(g, ids, opt.RemoveFrac, opt.StreetSpeed, rng)
			centers[cx][cy] = ids[opt.CityNX/2][opt.CityNY/2]
		}
	}
	// Highway mesh: adjacent city centers, bidirectional.
	for cx := 0; cx < opt.CitiesX; cx++ {
		for cy := 0; cy < opt.CitiesY; cy++ {
			if cx+1 < opt.CitiesX {
				g.AddBidirectional(centers[cx][cy], centers[cx+1][cy], opt.HighwaySpeed)
			}
			if cy+1 < opt.CitiesY {
				g.AddBidirectional(centers[cx][cy], centers[cx][cy+1], opt.HighwaySpeed)
			}
		}
	}
	return g
}

// BuildEngine compiles a fresh engine snapshot of g, bypassing the
// cached-engine fast path. Preprocessing benchmarks and diagnostics use
// it to measure the build (CSR + ALT + CH) repeatedly; production code
// should call Engine, which caches per graph revision.
func (g *Graph) BuildEngine() *Engine { return newEngine(g) }
