package roadnet

// Graph serialization: a tagged-row CSV format small enough to write
// by hand and stable enough to check into a deployment repo, so
// sidqserve can load a road network from a flag instead of only
// synthesizing grid cities.
//
//	node,<x>,<y>
//	edge,<from>,<to>,<speedcap>
//
// Node ids are implicit: the i-th node row is node i, which is exactly
// what AddNode assigns, so a write/read round trip preserves every id.
// Edge rows reference those implicit ids; edge length is recomputed
// from the node geometry on load, as AddEdge does.

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"

	"sidq/internal/geo"
)

// WriteCSV serializes the graph in the tagged-row format, nodes first
// (so a streaming reader can resolve edge endpoints immediately).
func WriteCSV(w io.Writer, g *Graph) error {
	cw := csv.NewWriter(w)
	for i := 0; i < g.NumNodes(); i++ {
		n := g.Node(NodeID(i))
		rec := []string{
			"node",
			strconv.FormatFloat(n.Pos.X, 'g', -1, 64),
			strconv.FormatFloat(n.Pos.Y, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(EdgeID(i))
		rec := []string{
			"edge",
			strconv.Itoa(int(e.From)),
			strconv.Itoa(int(e.To)),
			strconv.FormatFloat(e.SpeedCap, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a graph from the tagged-row format. Edge rows may
// only reference node rows that precede them.
func ReadCSV(r io.Reader) (*Graph, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // row width depends on the tag
	g := NewGraph()
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("parse graph csv: %w", err)
		}
		line++
		switch rec[0] {
		case "node":
			if len(rec) != 3 {
				return nil, fmt.Errorf("parse graph csv: line %d: node row wants 3 fields, got %d", line, len(rec))
			}
			x, err := parseCoord(rec[1])
			if err != nil {
				return nil, fmt.Errorf("parse graph csv: line %d: bad x %q: %w", line, rec[1], err)
			}
			y, err := parseCoord(rec[2])
			if err != nil {
				return nil, fmt.Errorf("parse graph csv: line %d: bad y %q: %w", line, rec[2], err)
			}
			g.AddNode(geo.Pt(x, y))
		case "edge":
			if len(rec) != 4 {
				return nil, fmt.Errorf("parse graph csv: line %d: edge row wants 4 fields, got %d", line, len(rec))
			}
			from, err := parseNodeRef(rec[1], g.NumNodes())
			if err != nil {
				return nil, fmt.Errorf("parse graph csv: line %d: bad from %q: %w", line, rec[1], err)
			}
			to, err := parseNodeRef(rec[2], g.NumNodes())
			if err != nil {
				return nil, fmt.Errorf("parse graph csv: line %d: bad to %q: %w", line, rec[2], err)
			}
			speed, err := parseCoord(rec[3])
			if err != nil || speed <= 0 {
				return nil, fmt.Errorf("parse graph csv: line %d: bad speedcap %q", line, rec[3])
			}
			g.AddEdge(from, to, speed)
		default:
			return nil, fmt.Errorf("parse graph csv: line %d: unknown row tag %q", line, rec[0])
		}
	}
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("parse graph csv: no node rows")
	}
	return g, nil
}

func parseCoord(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("not finite")
	}
	return v, nil
}

func parseNodeRef(s string, numNodes int) (NodeID, error) {
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, err
	}
	if v < 0 || v >= numNodes {
		return 0, fmt.Errorf("node %d not yet defined (%d nodes so far)", v, numNodes)
	}
	return NodeID(v), nil
}
