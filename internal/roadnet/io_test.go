package roadnet

import (
	"bytes"
	"strings"
	"testing"

	"sidq/internal/geo"
)

func TestGraphCSVRoundTrip(t *testing.T) {
	g := GridCity(GridCityOptions{NX: 5, NY: 4, Spacing: 150, Jitter: 3, SpeedCap: 14, Seed: 9})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: %d/%d nodes, %d/%d edges",
			got.NumNodes(), g.NumNodes(), got.NumEdges(), g.NumEdges())
	}
	for i := 0; i < g.NumNodes(); i++ {
		a, b := g.Node(NodeID(i)), got.Node(NodeID(i))
		if a.Pos != b.Pos {
			t.Fatalf("node %d moved: %v -> %v", i, a.Pos, b.Pos)
		}
	}
	for i := 0; i < g.NumEdges(); i++ {
		a, b := g.Edge(EdgeID(i)), got.Edge(EdgeID(i))
		if a.From != b.From || a.To != b.To || a.SpeedCap != b.SpeedCap || a.Length != b.Length {
			t.Fatalf("edge %d changed: %+v -> %+v", i, a, b)
		}
	}
	// Second serialization of the parsed graph must be byte-identical.
	var buf2 bytes.Buffer
	if err := WriteCSV(&buf2, got); err != nil {
		t.Fatal(err)
	}
	var buf1 bytes.Buffer
	if err := WriteCSV(&buf1, g); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("re-serialization not byte-identical")
	}
}

func TestGraphCSVHandWritten(t *testing.T) {
	in := "node,0,0\nnode,100,0\nnode,100,50\nedge,0,1,15\nedge,1,2,10\n"
	g, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("got %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if e := g.Edge(0); e.Length != 100 {
		t.Fatalf("edge 0 length %v, want 100 (recomputed from geometry)", e.Length)
	}
	if n := g.Node(2); n.Pos != geo.Pt(100, 50) {
		t.Fatalf("node 2 at %v", n.Pos)
	}
}

func TestGraphCSVRejectsMalformed(t *testing.T) {
	cases := []string{
		"",                                 // empty: no nodes
		"edge,0,1,15\n",                    // edge before nodes
		"node,0,0\nedge,0,5,15\n",          // forward node reference
		"node,0,NaN\n",                     // non-finite coordinate
		"node,0,0\nnode,1,1\nedge,0,1,0\n", // non-positive speed
		"vertex,0,0\n",                     // unknown tag
		"node,0\n",                         // short node row
	}
	for _, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("ReadCSV(%q) accepted malformed input", in)
		}
	}
}
