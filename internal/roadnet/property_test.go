package roadnet

// Property tests for the compiled query engine: the CSR one-to-many
// Dijkstra and path search must agree with a deliberately naive
// map-based reference implementation (linear-scan frontier, no heap,
// no CSR) across hundreds of seeded generator graphs, and the bounded
// search must be exact below its cost budget and +Inf above it.

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// refDijkstra is the reference single-source shortest-distance solver:
// hash maps and a linear frontier scan, structured like the package's
// pre-engine implementation. Deliberately slow and obvious.
func refDijkstra(g *Graph, src NodeID) map[NodeID]float64 {
	dist := map[NodeID]float64{src: 0}
	done := map[NodeID]bool{}
	for {
		best, bd := NodeID(-1), math.Inf(1)
		for n, d := range dist {
			if !done[n] && d < bd {
				best, bd = n, d
			}
		}
		if best < 0 {
			break
		}
		done[best] = true
		for _, eid := range g.OutEdges(best) {
			e := g.Edge(eid)
			nd := bd + e.Length
			if cur, ok := dist[e.To]; !ok || nd < cur {
				dist[e.To] = nd
			}
		}
	}
	return dist
}

func TestEngineMatchesReferenceDijkstra(t *testing.T) {
	const graphs = 500
	for trial := 0; trial < graphs; trial++ {
		seed := int64(1000 + trial)
		rng := rand.New(rand.NewSource(seed))
		opt := GridCityOptions{
			NX:         2 + rng.Intn(5),
			NY:         2 + rng.Intn(5),
			Spacing:    60 + rng.Float64()*120,
			Jitter:     rng.Float64() * 15,
			RemoveFrac: rng.Float64() * 0.4,
			Seed:       seed,
		}
		g := GridCity(opt)
		src := NodeID(rng.Intn(g.NumNodes()))
		ref := refDijkstra(g, src)

		targets := make([]NodeID, g.NumNodes())
		for i := range targets {
			targets[i] = NodeID(i)
		}
		got := make([]float64, len(targets))
		reached := g.Engine().ManyDist(src, targets, math.Inf(1), got)
		if reached != len(ref) {
			t.Fatalf("trial %d: ManyDist reached %d nodes, reference reached %d", trial, reached, len(ref))
		}
		for i, tgt := range targets {
			want, ok := ref[tgt]
			if !ok {
				want = math.Inf(1)
			}
			if got[i] != want && !(math.IsInf(got[i], 1) && math.IsInf(want, 1)) {
				t.Fatalf("trial %d: d(%d,%d) = %v, reference %v", trial, src, tgt, got[i], want)
			}
		}

		// Path search: distance agrees with the reference, the edge
		// sequence is connected, and its length sums to Dist.
		for probe := 0; probe < 5; probe++ {
			dst := NodeID(rng.Intn(g.NumNodes()))
			p, err := g.ShortestPath(src, dst)
			want, reachable := ref[dst]
			if !reachable {
				if err == nil {
					t.Fatalf("trial %d: ShortestPath(%d,%d) found a path, reference says unreachable", trial, src, dst)
				}
				continue
			}
			if err != nil {
				t.Fatalf("trial %d: ShortestPath(%d,%d): %v (reference dist %v)", trial, src, dst, err, want)
			}
			if p.Dist != want {
				t.Fatalf("trial %d: ShortestPath(%d,%d).Dist = %v, reference %v", trial, src, dst, p.Dist, want)
			}
			var sum float64
			for i, eid := range p.Edges {
				e := g.Edge(eid)
				if e.From != p.Nodes[i] || e.To != p.Nodes[i+1] {
					t.Fatalf("trial %d: path edge %d (%d->%d) does not connect nodes %d->%d",
						trial, eid, e.From, e.To, p.Nodes[i], p.Nodes[i+1])
				}
				sum += e.Length
			}
			if sum != p.Dist {
				t.Fatalf("trial %d: path edge lengths sum to %v, Dist is %v", trial, sum, p.Dist)
			}
			// AStar (ALT + Euclidean heuristic) must return the same
			// optimal distance.
			ap, err := g.AStar(src, dst)
			if err != nil || ap.Dist != want {
				t.Fatalf("trial %d: AStar(%d,%d) = (%v, %v), reference %v", trial, src, dst, ap.Dist, err, want)
			}
		}
	}
}

func TestManyDistBoundedSemantics(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		seed := int64(9000 + trial)
		rng := rand.New(rand.NewSource(seed))
		g := GridCity(GridCityOptions{
			NX: 4 + rng.Intn(4), NY: 4 + rng.Intn(4),
			Spacing: 100, Jitter: 5, RemoveFrac: 0.25, Seed: seed,
		})
		src := NodeID(rng.Intn(g.NumNodes()))
		ref := refDijkstra(g, src)

		// Bound at a mid-range finite distance: everything at or below
		// the bound must be exact, everything above must be +Inf.
		var finite []float64
		for _, d := range ref {
			finite = append(finite, d)
		}
		sort.Float64s(finite)
		maxCost := finite[len(finite)/2]
		targets := make([]NodeID, g.NumNodes())
		for i := range targets {
			targets[i] = NodeID(i)
		}
		out := make([]float64, len(targets))
		reached := g.Engine().ManyDist(src, targets, maxCost, out)
		wantReached := 0
		for i, tgt := range targets {
			want, ok := ref[tgt]
			switch {
			case ok && want <= maxCost:
				wantReached++
				if out[i] != want {
					t.Fatalf("trial %d: bounded d(%d,%d) = %v, want exact %v (bound %v)", trial, src, tgt, out[i], want, maxCost)
				}
			default:
				if !math.IsInf(out[i], 1) {
					t.Fatalf("trial %d: d(%d,%d) = %v beyond bound %v, want +Inf (ref %v)", trial, src, tgt, out[i], maxCost, want)
				}
			}
		}
		if reached != wantReached {
			t.Fatalf("trial %d: bounded ManyDist reported %d reached, want %d", trial, reached, wantReached)
		}
	}
}
