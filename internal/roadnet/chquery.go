package roadnet

// CH query algorithms: the bidirectional point-to-point search
// (CHDist) and the shared-forward one-to-many search (CHManyDist).
// Both relax only upward arcs — the forward search over the upward
// CSR, the backward search over the downward CSR walked head-to-tail —
// and stop a direction as soon as its frontier passes the best meeting
// candidate µ. Returned distances are re-accumulated along the
// unpacked original-edge path (see the exactness note in ch.go), so
// they are bit-identical to the flat Dijkstra.

import "math"

// chLabel is one node's search state, packed into a single 16-byte
// record so that first touch of a node costs one cache line rather
// than one per parallel array — at continental node counts the scratch
// arrays dwarf the LLC and the searches are miss-bound.
type chLabel struct {
	d     float64
	stamp uint32 // epoch<<1 = labeled, epoch<<1|1 = settled, 0 = never
	par   int32  // best incoming arc id, -1 = search root
}

// chScratch is the pooled per-query state of the CH searches: forward
// and backward label arrays with independent epoch stamps (CHManyDist
// keeps one forward epoch alive across many backward epochs), the two
// heaps, and unpack buffers. Labels are indexed by RANK, not node id
// (see the CSR note in chData).
type chScratch struct {
	labF, labB     []chLabel
	epochF, epochB uint32
	hf, hb         chHeap

	chain []int32 // forward parent chain (arc ids, meet -> source)
	stack []int32 // shortcut unpack stack

	heads []int32   // SnapDists: deduplicated miss head nodes
	headD []float64 // SnapDists: distances per head
}

func newCHScratch(n int) *chScratch {
	return &chScratch{
		labF: make([]chLabel, n),
		labB: make([]chLabel, n),
	}
}

func (s *chScratch) beginF() {
	if s.epochF >= math.MaxUint32>>1 {
		for i := range s.labF {
			s.labF[i].stamp = 0
		}
		s.epochF = 0
	}
	s.epochF++
	s.hf.reset()
}

func (s *chScratch) beginB() {
	if s.epochB >= math.MaxUint32>>1 {
		for i := range s.labB {
			s.labB[i].stamp = 0
		}
		s.epochB = 0
	}
	s.epochB++
	s.hb.reset()
}

func (e *Engine) getCHScratch() *chScratch {
	s := e.chScratch.Get().(*chScratch)
	if len(s.labF) < len(e.pos) { // defensive; pool is per-engine
		s = newCHScratch(len(e.pos))
	}
	return s
}

func (e *Engine) putCHScratch(s *chScratch) { e.chScratch.Put(s) }

// chPointDist runs the bidirectional upward search a -> b and returns
// the exact re-accumulated distance (ok=false when no path exists).
// Inside the search, nodes are addressed by RANK (see the CSR note in
// chData); a and b are node ids and translated on entry.
func (e *Engine) chPointDist(s *chScratch, a, b int32) (float64, bool) {
	c := e.ch
	ra, rb := c.rank[a], c.rank[b]
	s.beginF()
	s.beginB()
	labeledF, doneF := s.epochF<<1, s.epochF<<1|1
	labeledB, doneB := s.epochB<<1, s.epochB<<1|1
	s.labF[ra] = chLabel{d: 0, stamp: labeledF, par: -1}
	s.hf.push(ra, 0)
	s.labB[rb] = chLabel{d: 0, stamp: labeledB, par: -1}
	s.hb.push(rb, 0)
	mu := math.Inf(1)
	meet := int32(-1)
	var pops uint64
	for {
		fLive := s.hf.len() > 0 && s.hf.items[0].prio <= mu
		bLive := s.hb.len() > 0 && s.hb.items[0].prio <= mu
		if !fLive && !bLive {
			break
		}
		// Balanced alternation: settle the side with the nearer frontier.
		if fLive && (!bLive || s.hf.items[0].prio <= s.hb.items[0].prio) {
			cur := s.hf.pop()
			pops++
			u := cur.node
			if s.labF[u].stamp == doneF {
				continue
			}
			s.labF[u].stamp = doneF
			if s.labB[u].stamp>>1 == s.epochB {
				if cand := s.labF[u].d + s.labB[u].d; cand < mu {
					mu, meet = cand, u
				}
			}
			d := s.labF[u].d
			if chStallF(c, s, u, d) {
				continue
			}
			for _, a := range c.up[c.upOff[u]:c.upOff[u+1]] {
				l := &s.labF[a.other]
				if l.stamp == doneF {
					continue
				}
				nd := d + a.w
				if nd >= mu {
					continue // cannot beat the best candidate: µ only shrinks
				}
				if l.stamp != labeledF || nd < l.d {
					*l = chLabel{d: nd, stamp: labeledF, par: a.arc}
					s.hf.push(a.other, nd)
					// Candidate at label time: µ shrinks as early as
					// possible, stopping both frontiers sooner.
					if s.labB[a.other].stamp>>1 == s.epochB {
						if cand := nd + s.labB[a.other].d; cand < mu {
							mu, meet = cand, a.other
						}
					}
				}
			}
		} else {
			cur := s.hb.pop()
			pops++
			u := cur.node
			if s.labB[u].stamp == doneB {
				continue
			}
			s.labB[u].stamp = doneB
			if s.labF[u].stamp>>1 == s.epochF {
				if cand := s.labF[u].d + s.labB[u].d; cand < mu {
					mu, meet = cand, u
				}
			}
			d := s.labB[u].d
			if chStallB(c, s, u, d) {
				continue
			}
			for _, a := range c.dn[c.dnOff[u]:c.dnOff[u+1]] {
				l := &s.labB[a.other]
				if l.stamp == doneB {
					continue
				}
				nd := d + a.w
				if nd >= mu {
					continue
				}
				if l.stamp != labeledB || nd < l.d {
					*l = chLabel{d: nd, stamp: labeledB, par: a.arc}
					s.hb.push(a.other, nd)
					if s.labF[a.other].stamp>>1 == s.epochF {
						if cand := nd + s.labF[a.other].d; cand < mu {
							mu, meet = cand, a.other
						}
					}
				}
			}
		}
	}
	obsAdd(&e.ctr.heapPops, &pkgObs.heapPops, pops)
	if meet < 0 {
		return 0, false
	}
	return e.chExactDist(s, meet), true
}

// Stall-on-demand: a settled label that some higher-ranked node already
// reaches strictly cheaper cannot lie on a shortest up-down path, so
// its out-arcs need not be relaxed. Nodes on an optimal chain are never
// stalled — a strictly cheaper detour through them would contradict the
// chain's optimality — so pruning stalled labels preserves exactness.
// The label itself stays valid as a meeting candidate (it is still the
// length of a real path).
func chStallF(c *chData, s *chScratch, u int32, d float64) bool {
	for _, a := range c.dn[c.dnOff[u]:c.dnOff[u+1]] {
		if l := &s.labF[a.other]; l.stamp>>1 == s.epochF && l.d+a.w < d {
			return true
		}
	}
	return false
}

func chStallB(c *chData, s *chScratch, u int32, d float64) bool {
	for _, a := range c.up[c.upOff[u]:c.upOff[u+1]] {
		if l := &s.labB[a.other]; l.stamp>>1 == s.epochB && l.d+a.w < d {
			return true
		}
	}
	return false
}

// chForward runs the forward upward search from src to completion,
// leaving exact upward labels in labF at the current epochF.
func (e *Engine) chForward(s *chScratch, src int32) {
	c := e.ch
	r := c.rank[src]
	s.beginF()
	labeledF, doneF := s.epochF<<1, s.epochF<<1|1
	s.labF[r] = chLabel{d: 0, stamp: labeledF, par: -1}
	s.hf.push(r, 0)
	var pops uint64
	for s.hf.len() > 0 {
		cur := s.hf.pop()
		pops++
		u := cur.node
		if s.labF[u].stamp == doneF {
			continue
		}
		s.labF[u].stamp = doneF
		d := s.labF[u].d
		if chStallF(c, s, u, d) {
			continue
		}
		for _, a := range c.up[c.upOff[u]:c.upOff[u+1]] {
			l := &s.labF[a.other]
			if l.stamp == doneF {
				continue
			}
			nd := d + a.w
			if l.stamp != labeledF || nd < l.d {
				*l = chLabel{d: nd, stamp: labeledF, par: a.arc}
				s.hf.push(a.other, nd)
			}
		}
	}
	obsAdd(&e.ctr.heapPops, &pkgObs.heapPops, pops)
}

// chBackwardOne runs one µ-pruned backward search from t against the
// forward labels left by chForward, returning the exact distance
// src -> t (ok=false when no path exists).
func (e *Engine) chBackwardOne(s *chScratch, t int32) (float64, bool) {
	c := e.ch
	r := c.rank[t]
	s.beginB()
	labeledB, doneB := s.epochB<<1, s.epochB<<1|1
	s.labB[r] = chLabel{d: 0, stamp: labeledB, par: -1}
	s.hb.push(r, 0)
	mu := math.Inf(1)
	meet := int32(-1)
	var pops uint64
	for s.hb.len() > 0 {
		cur := s.hb.pop()
		pops++
		u := cur.node
		if s.labB[u].stamp == doneB {
			continue
		}
		if cur.prio > mu {
			break // frontier passed the best candidate: µ is final
		}
		s.labB[u].stamp = doneB
		if s.labF[u].stamp>>1 == s.epochF {
			if cand := s.labF[u].d + s.labB[u].d; cand < mu {
				mu, meet = cand, u
			}
		}
		d := s.labB[u].d
		if chStallB(c, s, u, d) {
			continue
		}
		for _, a := range c.dn[c.dnOff[u]:c.dnOff[u+1]] {
			l := &s.labB[a.other]
			if l.stamp == doneB {
				continue
			}
			nd := d + a.w
			if nd >= mu {
				continue // cannot beat the best candidate: µ only shrinks
			}
			if l.stamp != labeledB || nd < l.d {
				*l = chLabel{d: nd, stamp: labeledB, par: a.arc}
				s.hb.push(a.other, nd)
				if s.labF[a.other].stamp>>1 == s.epochF {
					if cand := nd + s.labF[a.other].d; cand < mu {
						mu, meet = cand, a.other
					}
				}
			}
		}
	}
	obsAdd(&e.ctr.heapPops, &pkgObs.heapPops, pops)
	if meet < 0 {
		return 0, false
	}
	return e.chExactDist(s, meet), true
}

// chManyDist fills out[i] with the exact distance src -> heads[i]
// (+Inf when unreachable): one full forward search shared by a
// µ-pruned backward search per head.
func (e *Engine) chManyDist(s *chScratch, src int32, heads []int32, out []float64) {
	e.chForward(s, src)
	for i, t := range heads {
		if d, ok := e.chBackwardOne(s, t); ok {
			out[i] = d
		} else {
			out[i] = math.Inf(1)
		}
	}
}

// chExactDist unpacks the up-down path through meet (a rank) into
// original edges and re-accumulates the distance left-to-right from the
// source — the same arithmetic the flat Dijkstra performs along that
// path. The parent chains live in rank space; the arc store speaks node
// ids, so each hop translates back through rank[].
func (e *Engine) chExactDist(s *chScratch, meet int32) float64 {
	c := e.ch
	d := 0.0
	// Forward half: the parent chain runs meet -> source; collect it,
	// then accumulate source -> meet.
	s.chain = s.chain[:0]
	for x := meet; ; {
		arc := s.labF[x].par
		if arc < 0 {
			break
		}
		s.chain = append(s.chain, arc)
		x = c.rank[c.aFrom[arc]]
	}
	for i := len(s.chain) - 1; i >= 0; i-- {
		d = c.accum(s, s.chain[i], d, e.elen)
	}
	// Backward half: the parent chain already runs meet -> target in
	// path order.
	for x := meet; ; {
		arc := s.labB[x].par
		if arc < 0 {
			break
		}
		d = c.accum(s, arc, d, e.elen)
		x = c.rank[c.aTo[arc]]
	}
	return d
}

// accum unpacks arc recursively (explicit stack) and folds each
// original edge length into d in path order.
func (c *chData) accum(s *chScratch, arc int32, d float64, elen []float64) float64 {
	s.stack = append(s.stack[:0], arc)
	for len(s.stack) > 0 {
		a := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		if c.aMid[a] < 0 {
			d += elen[c.aEid[a]]
			continue
		}
		// Right pushed first so the left child unpacks first.
		s.stack = append(s.stack, c.aRight[a], c.aLeft[a])
	}
	return d
}
