package roadnet

// Contraction-hierarchy property tests. The acceptance bar is
// bit-exactness: every distance the hierarchy serves must equal the
// flat Dijkstra's float64 result exactly — not approximately — across
// hundreds of random graphs, bounded and unbounded, point-to-point and
// one-to-many, sequential and concurrent.

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// forceCHAuto lowers the automatic-build gate to the hard floor so
// sweep-sized graphs (well below the production chAutoNodes threshold)
// still compile a hierarchy. The package's tests never run in
// parallel, so mutating the package var with a cleanup is safe, and —
// unlike forcing a one-shot build on a single engine — it survives
// graph mutation + rebuild, which the invalidation test depends on.
func forceCHAuto(t *testing.T) {
	t.Helper()
	old := chAutoNodes
	chAutoNodes = chMinNodes
	t.Cleanup(func() { chAutoNodes = old })
}

// chSweepGraph generates a random graph guaranteed to be above
// chMinNodes, so the hierarchy is always the code path under test
// (callers lower the auto-build gate with forceCHAuto).
func chSweepGraph(trial int) (*Graph, *rand.Rand) {
	seed := int64(40000 + trial)
	rng := rand.New(rand.NewSource(seed))
	g := GridCity(GridCityOptions{
		NX:         6 + rng.Intn(7),
		NY:         6 + rng.Intn(7),
		Spacing:    60 + rng.Float64()*120,
		Jitter:     rng.Float64() * 15,
		RemoveFrac: rng.Float64() * 0.4,
		Seed:       seed,
	})
	return g, rng
}

func TestCHDistMatchesReferenceDijkstra(t *testing.T) {
	forceCHAuto(t)
	const graphs = 500
	for trial := 0; trial < graphs; trial++ {
		g, rng := chSweepGraph(trial)
		e := g.Engine()
		if !e.HasCH() {
			t.Fatalf("trial %d: %d-node graph built no hierarchy", trial, g.NumNodes())
		}
		src := NodeID(rng.Intn(g.NumNodes()))
		ref := refDijkstra(g, src)

		// Point-to-point: CHDist must be the reference value exactly.
		for probe := 0; probe < 8; probe++ {
			dst := NodeID(rng.Intn(g.NumNodes()))
			d, err := e.CHDist(src, dst)
			want, reachable := ref[dst]
			if !reachable {
				if err == nil {
					t.Fatalf("trial %d: CHDist(%d,%d) = %v, reference says unreachable", trial, src, dst, d)
				}
				continue
			}
			if err != nil {
				t.Fatalf("trial %d: CHDist(%d,%d): %v (reference %v)", trial, src, dst, err, want)
			}
			if d != want {
				t.Fatalf("trial %d: CHDist(%d,%d) = %v, reference %v (diff %g)", trial, src, dst, d, want, d-want)
			}
		}

		// One-to-many over every node: exact values, exact reached count.
		targets := make([]NodeID, g.NumNodes())
		for i := range targets {
			targets[i] = NodeID(i)
		}
		out := make([]float64, len(targets))
		reached := e.CHManyDist(src, targets, math.Inf(1), out)
		if reached != len(ref) {
			t.Fatalf("trial %d: CHManyDist reached %d, reference %d", trial, reached, len(ref))
		}
		for i, tgt := range targets {
			want, ok := ref[tgt]
			if !ok {
				want = math.Inf(1)
			}
			if out[i] != want && !(math.IsInf(out[i], 1) && math.IsInf(want, 1)) {
				t.Fatalf("trial %d: CHManyDist d(%d,%d) = %v, reference %v", trial, src, tgt, out[i], want)
			}
		}
	}
}

func TestCHManyDistBoundedSemantics(t *testing.T) {
	forceCHAuto(t)
	for trial := 0; trial < 100; trial++ {
		g, rng := chSweepGraph(10000 + trial)
		e := g.Engine()
		src := NodeID(rng.Intn(g.NumNodes()))
		ref := refDijkstra(g, src)

		// Bound at an exactly achievable distance: the boundary target
		// itself must be included (d <= maxCost, not <), everything
		// beyond must be +Inf.
		var finite []float64
		for _, d := range ref {
			finite = append(finite, d)
		}
		sort.Float64s(finite)
		maxCost := finite[len(finite)/2]
		targets := make([]NodeID, g.NumNodes())
		for i := range targets {
			targets[i] = NodeID(i)
		}
		out := make([]float64, len(targets))
		reached := e.CHManyDist(src, targets, maxCost, out)
		wantReached := 0
		for i, tgt := range targets {
			want, ok := ref[tgt]
			if ok && want <= maxCost {
				wantReached++
				if out[i] != want {
					t.Fatalf("trial %d: bounded CH d(%d,%d) = %v, want exact %v (bound %v)", trial, src, tgt, out[i], want, maxCost)
				}
			} else if !math.IsInf(out[i], 1) {
				t.Fatalf("trial %d: CH d(%d,%d) = %v beyond bound %v, want +Inf", trial, src, tgt, out[i], maxCost)
			}
		}
		if reached != wantReached {
			t.Fatalf("trial %d: bounded CHManyDist reported %d reached, want %d", trial, reached, wantReached)
		}
	}
}

func TestCHTinyGraphFallback(t *testing.T) {
	g := GridCity(GridCityOptions{NX: 3, NY: 3, Seed: 7}) // 9 nodes < chMinNodes
	e := g.Engine()
	if e.HasCH() {
		t.Fatal("tiny graph built a hierarchy")
	}
	if _, err := e.CHDist(0, 8); err == nil {
		t.Error("CHDist on a CH-less engine should error")
	}
	out := make([]float64, 1)
	if got := e.CHManyDist(0, []NodeID{8}, math.Inf(1), out); got != -1 {
		t.Errorf("CHManyDist on a CH-less engine = %d, want -1", got)
	}
	// The generic entry points still serve queries via the flat sweep.
	ref := refDijkstra(g, 0)
	d, err := e.Dist(0, 8)
	if err != nil || d != ref[8] {
		t.Fatalf("fallback Dist = (%v, %v), want %v", d, err, ref[8])
	}
}

func TestCHSnapDistsMatchesContract(t *testing.T) {
	forceCHAuto(t)
	for trial := 0; trial < 50; trial++ {
		g, rng := chSweepGraph(20000 + trial)
		e := g.Engine()
		if !e.HasCH() {
			t.Fatal("sweep graph built no hierarchy")
		}
		// Random snaps; the reference is the documented arithmetic over
		// reference distances (identical float expression order).
		snap := func() Snap {
			return Snap{Edge: EdgeID(rng.Intn(g.NumEdges())), Param: rng.Float64()}
		}
		a := snap()
		bs := make([]Snap, 6)
		for i := range bs {
			bs[i] = snap()
		}
		u := g.Edge(a.Edge).To
		ref := refDijkstra(g, u)
		rem := (1 - a.Param) * g.Edge(a.Edge).Length
		// Bounded first: cache hits legitimately bypass the bound (the
		// documented pass-1 behavior), so the unbounded round must not
		// pre-warm the cache with beyond-bound values.
		for _, maxCost := range []float64{rem + 300, math.Inf(1)} {
			core := maxCost
			if !math.IsInf(core, 1) {
				core -= rem
				if core < 0 {
					core = 0
				}
			}
			out := make([]float64, len(bs))
			e.SnapDists(a, bs, maxCost, out)
			for j, b := range bs {
				var want float64
				if b.Edge == a.Edge && b.Param >= a.Param {
					want = (b.Param - a.Param) * g.Edge(a.Edge).Length
				} else {
					d, ok := ref[g.Edge(b.Edge).From]
					if ok && d <= core {
						want = rem + d + b.Param*g.Edge(b.Edge).Length
					} else {
						want = math.Inf(1)
					}
				}
				if out[j] != want && !(math.IsInf(out[j], 1) && math.IsInf(want, 1)) {
					t.Fatalf("trial %d (bound %v): SnapDists[%d] = %v, want %v", trial, maxCost, j, out[j], want)
				}
			}
		}
	}
}

func TestCHContinental(t *testing.T) {
	forceCHAuto(t)
	g := Continental(ContinentalOptions{
		CitiesX: 3, CitiesY: 3,
		CityNX: 6, CityNY: 6,
		Jitter: 4, RemoveFrac: 0.2,
		Seed: 11,
	})
	if got, want := g.NumNodes(), 3*3*6*6; got != want {
		t.Fatalf("NumNodes = %d, want %d", got, want)
	}
	e := g.Engine()
	if !e.HasCH() {
		t.Fatal("continental graph built no hierarchy")
	}
	// Strong connectivity + exactness from a corner node across cities.
	ref := refDijkstra(g, 0)
	if len(ref) != g.NumNodes() {
		t.Fatalf("reference reached %d of %d nodes: not strongly connected", len(ref), g.NumNodes())
	}
	rng := rand.New(rand.NewSource(5))
	for probe := 0; probe < 40; probe++ {
		dst := NodeID(rng.Intn(g.NumNodes()))
		d, err := e.CHDist(0, dst)
		if err != nil || d != ref[dst] {
			t.Fatalf("CHDist(0,%d) = (%v, %v), reference %v", dst, d, err, ref[dst])
		}
	}
	// Determinism: the generator must reproduce the same graph.
	g2 := Continental(ContinentalOptions{
		CitiesX: 3, CitiesY: 3,
		CityNX: 6, CityNY: 6,
		Jitter: 4, RemoveFrac: 0.2,
		Seed: 11,
	})
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("regenerated edge count %d != %d", g2.NumEdges(), g.NumEdges())
	}
	for i := 0; i < g.NumNodes(); i++ {
		if g.Node(NodeID(i)).Pos != g2.Node(NodeID(i)).Pos {
			t.Fatalf("regenerated node %d moved", i)
		}
	}
}

// TestConcurrentCHQueriesHammer drives every CH query shape from many
// goroutines against one engine (the pooled scratch is the shared
// state under test; make race-hammer runs this under -race).
func TestConcurrentCHQueriesHammer(t *testing.T) {
	forceCHAuto(t)
	g, _ := chSweepGraph(31337)
	e := g.Engine()
	if !e.HasCH() {
		t.Fatal("hammer graph built no hierarchy")
	}
	n := g.NumNodes()
	// Single-threaded expected values first.
	type pair struct{ a, b NodeID }
	rng := rand.New(rand.NewSource(99))
	pairs := make([]pair, 64)
	want := make([]float64, len(pairs))
	for i := range pairs {
		pairs[i] = pair{NodeID(rng.Intn(n)), NodeID(rng.Intn(n))}
		d, err := e.Dist(pairs[i].a, pairs[i].b)
		if err != nil {
			d = math.Inf(1)
		}
		want[i] = d
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := make([]float64, len(pairs))
			targets := make([]NodeID, len(pairs))
			for i := range pairs {
				targets[i] = pairs[i].b
			}
			for iter := 0; iter < 50; iter++ {
				for i, p := range pairs {
					d, err := e.Dist(p.a, p.b)
					if err != nil {
						d = math.Inf(1)
					}
					if d != want[i] && !(math.IsInf(d, 1) && math.IsInf(want[i], 1)) {
						t.Errorf("worker %d: Dist(%d,%d) = %v, want %v", w, p.a, p.b, d, want[i])
						return
					}
				}
				src := pairs[iter%len(pairs)].a
				e.CHManyDist(src, targets, math.Inf(1), out)
			}
		}(w)
	}
	wg.Wait()
}
