// Package core is sidq's quality-aware SID middleware — the
// integration layer the paper's "Open Issues" section calls for
// (quality management middleware, DQ-aware task planning, cross-layer
// DQ management). It ties the §2.2 cleaning task families together:
//
//   - Dataset bundles trajectories and STID readings with the context
//     needed to measure their quality;
//   - Stage adapts each cleaner to a common interface, tagged with the
//     taxonomy task it implements;
//   - Pipeline runs stages in order, re-assessing quality after each;
//   - Planner selects stages automatically from a quality assessment
//     against a target profile;
//   - the taxonomy registry reproduces the paper's Figure 2 as a
//     task x technique coverage matrix over this repository.
package core

import (
	"sidq/internal/geo"
	"sidq/internal/quality"
	"sidq/internal/stid"
	"sidq/internal/trajectory"
)

// Dataset is a bundle of spatial IoT data plus assessment context.
// Optional fields (Truth, TruthField) enable ground-truth dimensions.
type Dataset struct {
	Trajectories []*trajectory.Trajectory
	Readings     []stid.Reading

	// Assessment context.
	Truth            map[string]*trajectory.Trajectory // by trajectory id
	TruthField       func(geo.Point, float64) float64
	Region           geo.Rect
	ExpectedInterval float64 // nominal trajectory sampling period
	ReadingInterval  float64 // nominal sensor period
	NumSensors       int
	Duration         float64
	MaxSpeed         float64
	Now              float64
}

// Clone returns a shallow copy with fresh slices (trajectories are
// deep-copied so stages can edit in place; readings are copied).
func (ds *Dataset) Clone() *Dataset {
	out := *ds
	out.Trajectories = make([]*trajectory.Trajectory, len(ds.Trajectories))
	for i, tr := range ds.Trajectories {
		out.Trajectories[i] = tr.Clone()
	}
	out.Readings = append([]stid.Reading(nil), ds.Readings...)
	return &out
}

// trajectoryContext builds the quality context for one trajectory.
func (ds *Dataset) trajectoryContext(tr *trajectory.Trajectory) quality.TrajectoryContext {
	ctx := quality.TrajectoryContext{
		ExpectedInterval: ds.ExpectedInterval,
		MaxSpeed:         ds.MaxSpeed,
		Region:           ds.Region,
		Now:              ds.Now,
	}
	if ds.Truth != nil {
		ctx.Truth = ds.Truth[tr.ID]
	}
	return ctx
}

// Assess measures the dataset's quality: per-trajectory assessments are
// averaged dimension-wise and merged with the readings assessment
// (trajectory values win on conflicts, which only matter for
// DataVolume; both are also available individually via AssessParts).
func (ds *Dataset) Assess() quality.Assessment {
	trA, rdA := ds.AssessParts()
	out := quality.Assessment{}
	for k, v := range rdA {
		out[k] = v
	}
	for k, v := range trA {
		out[k] = v
	}
	if tv, ok1 := trA[quality.DataVolume]; ok1 {
		if rv, ok2 := rdA[quality.DataVolume]; ok2 {
			out[quality.DataVolume] = tv + rv
		}
	}
	return out
}

// AssessParts returns the trajectory-side and readings-side assessments
// separately.
func (ds *Dataset) AssessParts() (quality.Assessment, quality.Assessment) {
	var trA quality.Assessment
	if len(ds.Trajectories) > 0 {
		sums := map[quality.Dimension]float64{}
		counts := map[quality.Dimension]int{}
		for _, tr := range ds.Trajectories {
			a := quality.AssessTrajectory(tr, ds.trajectoryContext(tr))
			for k, v := range a {
				sums[k] += v
				counts[k]++
			}
		}
		trA = quality.Assessment{}
		for k, s := range sums {
			if k == quality.DataVolume || k == quality.TruthVolume {
				trA[k] = s // volumes add up
				continue
			}
			trA[k] = s / float64(counts[k])
		}
	}
	var rdA quality.Assessment
	if len(ds.Readings) > 0 {
		rdA = quality.AssessReadings(ds.Readings, quality.ReadingsContext{
			Truth:            ds.TruthField,
			Region:           ds.Region,
			ExpectedInterval: ds.ReadingInterval,
			NumSensors:       ds.NumSensors,
			Duration:         ds.Duration,
			Now:              ds.Now,
		})
	}
	if trA == nil {
		trA = quality.Assessment{}
	}
	if rdA == nil {
		rdA = quality.Assessment{}
	}
	return trA, rdA
}
