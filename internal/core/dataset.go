// Package core is sidq's quality-aware SID middleware — the
// integration layer the paper's "Open Issues" section calls for
// (quality management middleware, DQ-aware task planning, cross-layer
// DQ management). It ties the §2.2 cleaning task families together:
//
//   - Dataset bundles trajectories and STID readings with the context
//     needed to measure their quality;
//   - Stage adapts each cleaner to a common interface, tagged with the
//     taxonomy task it implements;
//   - Pipeline runs stages in order, re-assessing quality after each;
//   - Planner selects stages automatically from a quality assessment
//     against a target profile;
//   - the taxonomy registry reproduces the paper's Figure 2 as a
//     task x technique coverage matrix over this repository.
package core

import (
	"sync"
	"sync/atomic"

	"sidq/internal/geo"
	"sidq/internal/quality"
	"sidq/internal/stid"
	"sidq/internal/trajectory"
)

// Dataset is a bundle of spatial IoT data plus assessment context.
// Optional fields (Truth, TruthField) enable ground-truth dimensions.
type Dataset struct {
	Trajectories []*trajectory.Trajectory
	Readings     []stid.Reading

	// Assessment context.
	Truth            map[string]*trajectory.Trajectory // by trajectory id
	TruthField       func(geo.Point, float64) float64
	Region           geo.Rect
	ExpectedInterval float64 // nominal trajectory sampling period
	ReadingInterval  float64 // nominal sensor period
	NumSensors       int
	Duration         float64
	MaxSpeed         float64
	Now              float64
}

// Clone returns a shallow copy with fresh slices (trajectories are
// deep-copied so stages can edit in place; readings are copied).
//
// The assessment context is shared, not copied: the Truth map, the
// TruthField function, and the scalar context fields of the clone alias
// the parent's. This is deliberate — cloning exists so stages can
// rewrite the *data* cheaply, while ground truth is immutable reference
// material that may be megabytes of trajectories; copying it per stage
// attempt would dwarf the cost of the stage itself. The contract this
// imposes: holders of a clone must treat Truth (and the trajectories it
// points to) as read-only — inserting, deleting, or mutating entries
// through a clone is visible to the parent and to every sibling clone,
// and is a data race under the parallel runner. CloneCOW shares Truth
// the same way. TestCloneSharesTruthMap pins this contract.
func (ds *Dataset) Clone() *Dataset {
	out := *ds
	out.Trajectories = make([]*trajectory.Trajectory, len(ds.Trajectories))
	for i, tr := range ds.Trajectories {
		out.Trajectories[i] = tr.Clone()
	}
	out.Readings = append([]stid.Reading(nil), ds.Readings...)
	return &out
}

// CloneCOW returns a copy-on-write clone: the Trajectories and Readings
// slices are fresh (entries can be replaced without touching ds), but
// the trajectory pointers are shared with ds. It is safe exactly for
// holders that replace ds.Trajectories[i] entries rather than mutating
// a trajectory's points in place — the contract stages declare with
// StageTraits.ReplacesTrajectories. Readings are value-copied, so their
// fields may be edited freely.
func (ds *Dataset) CloneCOW() *Dataset {
	out := *ds
	out.Trajectories = append([]*trajectory.Trajectory(nil), ds.Trajectories...)
	out.Readings = append([]stid.Reading(nil), ds.Readings...)
	return &out
}

// trajectoryContext builds the quality context for one trajectory.
func (ds *Dataset) trajectoryContext(tr *trajectory.Trajectory) quality.TrajectoryContext {
	ctx := quality.TrajectoryContext{
		ExpectedInterval: ds.ExpectedInterval,
		MaxSpeed:         ds.MaxSpeed,
		Region:           ds.Region,
		Now:              ds.Now,
	}
	if ds.Truth != nil {
		ctx.Truth = ds.Truth[tr.ID]
	}
	return ctx
}

// Assess measures the dataset's quality: per-trajectory assessments are
// averaged dimension-wise and merged with the readings assessment
// (trajectory values win on conflicts, which only matter for
// DataVolume; both are also available individually via AssessParts).
func (ds *Dataset) Assess() quality.Assessment {
	trA, rdA := ds.AssessParts()
	return mergeAssessments(trA, rdA)
}

// mergeAssessments combines the trajectory-side and readings-side
// assessments (trajectory values win on conflicts except DataVolume,
// which adds up).
func mergeAssessments(trA, rdA quality.Assessment) quality.Assessment {
	out := quality.Assessment{}
	for k, v := range rdA {
		out[k] = v
	}
	for k, v := range trA {
		out[k] = v
	}
	if tv, ok1 := trA[quality.DataVolume]; ok1 {
		if rv, ok2 := rdA[quality.DataVolume]; ok2 {
			out[quality.DataVolume] = tv + rv
		}
	}
	return out
}

// AssessN measures quality like Assess but computes the per-trajectory
// assessments across up to workers goroutines. The dimension-wise
// reduction always folds per-trajectory results in trajectory order, so
// the result is identical to Assess for every worker count (float
// summation order never changes).
func (ds *Dataset) AssessN(workers int) quality.Assessment {
	if workers <= 1 || len(ds.Trajectories) < 2 {
		return ds.Assess()
	}
	per := ds.assessEach(workers)
	trA, rdA := ds.assessPartsFrom(per)
	return mergeAssessments(trA, rdA)
}

// assessEach computes each trajectory's assessment, fanned out across a
// bounded worker pool. Results are stored by index, so downstream
// reductions see them in deterministic trajectory order.
func (ds *Dataset) assessEach(workers int) []quality.Assessment {
	per := make([]quality.Assessment, len(ds.Trajectories))
	if workers > len(ds.Trajectories) {
		workers = len(ds.Trajectories)
	}
	if workers <= 1 {
		for i, tr := range ds.Trajectories {
			per[i] = quality.AssessTrajectory(tr, ds.trajectoryContext(tr))
		}
		return per
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ds.Trajectories) {
					return
				}
				tr := ds.Trajectories[i]
				per[i] = quality.AssessTrajectory(tr, ds.trajectoryContext(tr))
			}
		}()
	}
	wg.Wait()
	return per
}

// AssessParts returns the trajectory-side and readings-side assessments
// separately.
func (ds *Dataset) AssessParts() (quality.Assessment, quality.Assessment) {
	var per []quality.Assessment
	if len(ds.Trajectories) > 0 {
		per = ds.assessEach(1)
	}
	return ds.assessPartsFrom(per)
}

// assessPartsFrom folds precomputed per-trajectory assessments (in
// trajectory order) with the readings-side assessment.
func (ds *Dataset) assessPartsFrom(per []quality.Assessment) (quality.Assessment, quality.Assessment) {
	var trA quality.Assessment
	if len(per) > 0 {
		sums := map[quality.Dimension]float64{}
		counts := map[quality.Dimension]int{}
		for _, a := range per {
			for k, v := range a {
				sums[k] += v
				counts[k]++
			}
		}
		trA = quality.Assessment{}
		for k, s := range sums {
			if k == quality.DataVolume || k == quality.TruthVolume {
				trA[k] = s // volumes add up
				continue
			}
			trA[k] = s / float64(counts[k])
		}
	}
	var rdA quality.Assessment
	if len(ds.Readings) > 0 {
		rdA = quality.AssessReadings(ds.Readings, quality.ReadingsContext{
			Truth:            ds.TruthField,
			Region:           ds.Region,
			ExpectedInterval: ds.ReadingInterval,
			NumSensors:       ds.NumSensors,
			Duration:         ds.Duration,
			Now:              ds.Now,
		})
	}
	if trA == nil {
		trA = quality.Assessment{}
	}
	if rdA == nil {
		rdA = quality.Assessment{}
	}
	return trA, rdA
}
