package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"sidq/internal/obs"
	"sidq/internal/quality"
)

// FallibleStage is the fallible, cancellable stage contract. Stages
// that can report failure or observe deadlines implement it alongside
// Stage; the Runner prefers ApplyContext when available and falls back
// to Apply otherwise.
type FallibleStage interface {
	Stage
	// ApplyContext transforms the dataset in place, honouring ctx
	// cancellation, and reports failure instead of swallowing it.
	ApplyContext(ctx context.Context, ds *Dataset) error
}

// PartialError reports a stage that completed in a degraded way: some
// items failed while the rest were processed. The Runner records it in
// the stage report but does not retry, skip, or roll back — the stage's
// surviving work is kept.
type PartialError struct {
	Stage  string
	Failed int
	Total  int
	Last   error // last underlying failure, if any
}

// Error implements error.
func (e *PartialError) Error() string {
	if e.Last != nil {
		return fmt.Sprintf("stage %s: %d/%d items failed (last: %v)", e.Stage, e.Failed, e.Total, e.Last)
	}
	return fmt.Sprintf("stage %s: %d/%d items failed", e.Stage, e.Failed, e.Total)
}

// Unwrap exposes the last underlying failure to errors.Is/As.
func (e *PartialError) Unwrap() error { return e.Last }

// FailurePolicy selects what the Runner does when a stage fails after
// all retry attempts, or (under RollbackStage) regresses quality.
type FailurePolicy int

const (
	// FailFast aborts the run on the first stage failure, returning the
	// dataset as cleaned so far together with the error.
	FailFast FailurePolicy = iota
	// SkipStage discards the failing stage's work and continues the
	// pipeline from the pre-stage dataset.
	SkipStage
	// RollbackStage behaves like SkipStage on error and additionally
	// guards against quality regressions: a stage that succeeds but
	// leaves the assessment materially worse than before is rolled
	// back.
	RollbackStage
)

// String implements fmt.Stringer.
func (p FailurePolicy) String() string {
	switch p {
	case FailFast:
		return "fail-fast"
	case SkipStage:
		return "skip-stage"
	case RollbackStage:
		return "rollback-stage"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// RetryPolicy bounds per-stage retries with exponential backoff and
// jitter. The zero value means a single attempt and no waiting.
type RetryPolicy struct {
	MaxAttempts int           // total attempts per stage (<=0 means 1)
	BaseDelay   time.Duration // delay before the 2nd attempt
	MaxDelay    time.Duration // backoff cap (0 = uncapped)
	Multiplier  float64       // backoff growth factor (<=1 means 2)
	JitterFrac  float64       // +/- fraction of the delay randomized, in [0, 1]
}

// attempts normalizes MaxAttempts.
func (p RetryPolicy) attempts() int {
	if p.MaxAttempts <= 0 {
		return 1
	}
	return p.MaxAttempts
}

// Delay returns the backoff delay after the given 1-indexed failed
// attempt, jittered by rng when JitterFrac > 0 (nil rng disables
// jitter).
func (p RetryPolicy) Delay(attempt int, rng *rand.Rand) time.Duration {
	if p.BaseDelay <= 0 || attempt < 1 {
		return 0
	}
	mult := p.Multiplier
	if mult <= 1 {
		mult = 2
	}
	d := float64(p.BaseDelay) * math.Pow(mult, float64(attempt-1))
	if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.JitterFrac > 0 && rng != nil {
		j := p.JitterFrac
		if j > 1 {
			j = 1
		}
		d *= 1 - j + 2*j*rng.Float64()
	}
	return time.Duration(d)
}

// Runner executes pipelines resiliently: per-stage deadlines, panic
// recovery, bounded retry with exponential backoff + jitter, and a
// configurable failure policy including a quality-regression guard.
// The zero value runs like the historical Pipeline.Run except that a
// panicking or failing stage is skipped rather than killing the run.
type Runner struct {
	Policy       FailurePolicy
	Retry        RetryPolicy
	StageTimeout time.Duration // per-attempt deadline (0 = none)

	// Workers bounds the data-parallel worker pool: stages that declare
	// StageTraits.Shardable run across disjoint trajectory shards, and
	// per-stage quality assessment fans out per trajectory. 0 and 1 run
	// serially; negative selects runtime.NumCPU(). Output is identical
	// to the serial path for every worker count (see parallel.go).
	Workers int

	// GuardTol is the relative tolerance of the quality-regression
	// guard used by RollbackStage (default 0.05 = 5%).
	GuardTol float64
	// GuardDims restricts the regression guard to these dimensions
	// (nil = every measured dimension).
	GuardDims []quality.Dimension

	// Sleep is the backoff sleeper, overridable for deterministic
	// tests (default time.Sleep; it is never called with 0).
	Sleep func(time.Duration)
	// Rand seeds backoff jitter (nil disables jitter).
	Rand *rand.Rand
	// OnEvent, when set, observes retry/skip/rollback decisions as
	// human-readable messages (e.g. hook it to a logger). Under Workers
	// > 1 events from concurrent shards are serialized by the runner.
	OnEvent func(stage, event string)

	// Obs, when set, receives runner metrics: per-stage latency and
	// outcome counts, retry/panic/rollback/skip counters, and shard
	// queue-wait times. Nil disables metrics at zero cost (the
	// zero-overhead contract in DESIGN.md).
	Obs *obs.Registry
	// Trace, when set, receives structured execution events (stage
	// completions, retries, panics, skips, rollbacks, shards). The sink
	// must be safe for concurrent use when Workers > 1; obs.MemSink and
	// obs.FuncSink qualify. Nil disables tracing at zero cost.
	Trace TraceSink

	// evMu serializes OnEvent callbacks across shard workers.
	evMu sync.Mutex
}

// DefaultRunner returns the runner Pipeline.Run uses: skip failing
// stages, one attempt, no deadlines, no regression guard.
func DefaultRunner() *Runner { return &Runner{Policy: SkipStage} }

func (r *Runner) event(stage, format string, args ...interface{}) {
	if r.OnEvent != nil {
		r.evMu.Lock()
		defer r.evMu.Unlock()
		r.OnEvent(stage, fmt.Sprintf(format, args...))
	}
}

// Run executes the pipeline's stages in order over a clone of ds,
// re-assessing quality around every stage. It never panics because of
// a stage: panics become errors subject to retry and the failure
// policy. The returned error is non-nil only under FailFast (or when
// ctx itself is cancelled); the reports always cover every stage
// reached, including skipped and rolled-back ones.
func (r *Runner) Run(ctx context.Context, p *Pipeline, ds *Dataset) (*Dataset, []StageReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cur := ds.Clone()
	reports := make([]StageReport, 0, len(p.Stages))
	before := cur.AssessN(r.workerCount())
	for _, st := range p.Stages {
		if err := ctx.Err(); err != nil {
			return cur, reports, fmt.Errorf("pipeline cancelled before stage %s: %w", st.Name(), err)
		}
		var work *Dataset
		var rep StageReport
		if r.shardable(st, cur) {
			work, rep = r.runStageSharded(ctx, st, cur, before)
		} else {
			work, rep = r.runStage(ctx, st, cur, before)
		}
		switch {
		case rep.Err != nil && !rep.Skipped && !isPartial(rep.Err):
			// FailFast: surface the error with the progress so far.
			reports = append(reports, rep)
			return cur, reports, fmt.Errorf("stage %s failed: %w", st.Name(), rep.Err)
		case rep.Skipped || rep.RolledBack:
			// Keep the pre-stage dataset; Before/After chain stays flat.
			rep.After = before
			reports = append(reports, rep)
		default:
			cur = work
			before = rep.After
			reports = append(reports, rep)
		}
	}
	return cur, reports, nil
}

func isPartial(err error) bool {
	var pe *PartialError
	return errors.As(err, &pe)
}

// runStage attempts one stage with retries, returning the (possibly
// new) dataset and the report. On skip/rollback the caller keeps its
// pre-stage dataset. The results are named so the deferred
// duration-stamping and observation see the report actually returned.
func (r *Runner) runStage(ctx context.Context, st Stage, cur *Dataset, before quality.Assessment) (out *Dataset, rep StageReport) {
	rep = StageReport{
		Stage:  st.Name(),
		Task:   st.Task(),
		Before: before,
	}
	start := time.Now()
	defer func() {
		rep.Duration = time.Since(start)
		r.observeStage(&rep)
	}()

	attempts := r.Retry.attempts()
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		rep.Attempts = attempt
		// Each attempt works on its own clone so a failed or timed-out
		// attempt can never leave cur half-mutated. Stages that declare
		// they only replace trajectories get a cheap copy-on-write clone
		// instead of a deep copy of every point.
		work := cloneForStage(cur, st)
		err := r.attempt(ctx, st, work)
		if err == nil || isPartial(err) {
			rep.Err = err
			if pe := (*PartialError)(nil); errors.As(err, &pe) {
				rep.Meta = map[string]int{"failed": pe.Failed, "total": pe.Total}
			}
			rep.After = work.AssessN(r.workerCount())
			if r.Policy == RollbackStage {
				if worse := r.regressions(rep.After, before); len(worse) > 0 {
					rep.RolledBack = true
					r.event(st.Name(), "rolled back: regressed %v", worse)
					r.obsRollback(st.Name())
					return cur, rep
				}
			}
			return work, rep
		}
		lastErr = err
		if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
			r.obsAttemptFailure(st.Name(), attempt, err, false)
			break // the whole run is cancelled; retrying cannot help
		}
		r.obsAttemptFailure(st.Name(), attempt, err, attempt < attempts)
		if attempt < attempts {
			if d := r.Retry.Delay(attempt, r.Rand); d > 0 {
				sleep := r.Sleep
				if sleep == nil {
					sleep = time.Sleep
				}
				sleep(d)
			}
			r.event(st.Name(), "attempt %d/%d failed, retrying: %v", attempt, attempts, err)
		}
	}
	rep.Err = lastErr
	if r.Policy == SkipStage || r.Policy == RollbackStage {
		rep.Skipped = true
		r.event(st.Name(), "skipped after %d attempts: %v", rep.Attempts, lastErr)
		r.obsSkip(st.Name(), rep.Attempts, lastErr)
	}
	return cur, rep
}

// regressions returns the guarded dimensions on which after is
// materially worse than before.
func (r *Runner) regressions(after, before quality.Assessment) []quality.Dimension {
	tol := r.GuardTol
	if tol <= 0 {
		tol = 0.05
	}
	worse := after.WorseThan(before, tol)
	if len(r.GuardDims) == 0 || len(worse) == 0 {
		return worse
	}
	guarded := map[quality.Dimension]bool{}
	for _, d := range r.GuardDims {
		guarded[d] = true
	}
	out := worse[:0]
	for _, d := range worse {
		if guarded[d] {
			out = append(out, d)
		}
	}
	return out
}

// attempt runs one stage execution with panic recovery and the
// per-attempt deadline. The stage runs in its own goroutine so that a
// runaway legacy Apply (which cannot observe ctx) is abandoned at the
// deadline; it keeps mutating only its private clone.
func (r *Runner) attempt(parent context.Context, st Stage, work *Dataset) error {
	ctx := parent
	cancel := func() {}
	if r.StageTimeout > 0 {
		ctx, cancel = context.WithTimeout(parent, r.StageTimeout)
	}
	defer cancel()

	done := make(chan error, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				done <- &panicError{stage: st.Name(), val: p}
			}
		}()
		// Dispatch by declared shape: columnar stages get the pooled
		// struct-of-arrays path, fallible stages get ctx, legacy stages
		// get the plain Apply.
		if cs, ok := st.(ColumnarStage); ok && TraitsOf(st).Columnar {
			done <- applyColumnarStage(ctx, cs, work)
			return
		}
		if fs, ok := st.(FallibleStage); ok {
			done <- fs.ApplyContext(ctx, work)
			return
		}
		st.Apply(work)
		done <- nil
	}()
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		if parent.Err() != nil {
			return parent.Err()
		}
		return fmt.Errorf("stage %s exceeded deadline %v: %w", st.Name(), r.StageTimeout, ctx.Err())
	}
}
