package core

import (
	"fmt"
	"strings"
)

// TaxonomyEntry is one cell of the paper's Figure-2 categorization,
// mapped to the module that implements it in this repository.
type TaxonomyEntry struct {
	Layer     string // IoT layer (localization / pre-processing / business)
	Task      string // DQ task (Figure 2, task perspective)
	Technique string // technique family (Figure 2, technique perspective)
	Package   string // implementing package
	Symbol    string // representative exported symbol
}

// Taxonomy returns the full Figure-2 coverage matrix of this
// repository: every task the tutorial's taxonomy names, the technique
// perspective it exercises, and where it lives.
func Taxonomy() []TaxonomyEntry {
	return []TaxonomyEntry{
		// Localization layer — Location Refinement.
		{"localization", "location refinement / ensemble (single-source)", "probabilistic modeling", "internal/refine", "WkNN"},
		{"localization", "location refinement / ensemble (multi-source)", "probabilistic modeling", "internal/refine", "Multilaterate, Fuse"},
		{"localization", "location refinement / motion-based", "spatiotemporal dependency (Bayes filter)", "internal/refine", "Kalman, KalmanSmoothTrajectory"},
		{"localization", "location refinement / motion-based", "probabilistic modeling (SMC)", "internal/refine", "ParticleFilter"},
		{"localization", "location refinement / motion-based", "probabilistic graph model", "internal/refine", "HMMGrid"},
		{"localization", "location refinement / collaborative (joint denoising)", "collaborative computing", "internal/refine", "JointDenoise"},
		{"localization", "location refinement / collaborative (iterative)", "collaborative computing", "internal/refine", "IterativeOptimize"},
		// Pre-processing layer — Uncertainty Elimination.
		{"pre-processing", "uncertainty elimination / trajectory (calibration)", "spatial constraint modeling", "internal/uncertain", "CalibrateToAnchors"},
		{"pre-processing", "uncertainty elimination / trajectory (inference)", "spatiotemporal regularity (HMM + shortest paths)", "internal/uncertain", "MapMatch"},
		{"pre-processing", "uncertainty elimination / trajectory (online inference)", "stream computing (fixed-lag Viterbi)", "internal/uncertain", "OnlineMatcher"},
		{"pre-processing", "uncertainty elimination / trajectory (smoothing)", "spatiotemporal dependency", "internal/uncertain", "MovingAverage, ExponentialSmooth"},
		{"pre-processing", "uncertainty elimination / STID (interpolation)", "spatiotemporal dependency", "internal/uncertain", "IDW, GaussianKernel, TrendResidual"},
		{"pre-processing", "uncertainty elimination / STID (fusion)", "probabilistic modeling / multi-view", "internal/uncertain", "FuseSources"},
		{"pre-processing", "uncertainty elimination / STID (few labels)", "semi-supervised learning (co-training)", "internal/uncertain", "CoTraining"},
		{"pre-processing", "uncertainty elimination / STID (cross-region)", "transfer learning", "internal/uncertain", "TransferTrend"},
		{"pre-processing", "uncertainty elimination / STID (correlated variables)", "multi-task learning", "internal/uncertain", "MultiTaskTrend"},
		// Pre-processing layer — Outlier Removal.
		{"pre-processing", "outlier removal / trajectory (constraint)", "spatial constraint modeling", "internal/outlier", "SpeedConstraint"},
		{"pre-processing", "outlier removal / trajectory (statistics)", "probabilistic modeling", "internal/outlier", "Statistical"},
		{"pre-processing", "outlier removal / trajectory (prediction)", "spatiotemporal dependency", "internal/outlier", "Prediction"},
		{"pre-processing", "outlier removal / STID (temporal)", "probabilistic modeling", "internal/outlier", "Temporal"},
		{"pre-processing", "outlier removal / STID (spatial)", "spatially autocorrelated neighborhood", "internal/outlier", "Spatial"},
		{"pre-processing", "outlier removal / STID (spatiotemporal)", "neighborhood-based", "internal/outlier", "SpatioTemporal"},
		// Pre-processing layer — Fault Correction.
		{"pre-processing", "fault correction / symbolic (rule)", "spatial constraint modeling", "internal/faults", "ResolveConflicts"},
		{"pre-processing", "fault correction / symbolic (smoothing)", "spatiotemporal regularity", "internal/faults", "SmoothImpute"},
		{"pre-processing", "fault correction / symbolic (probabilistic)", "probabilistic modeling (HMM)", "internal/faults", "HMMClean"},
		{"pre-processing", "fault correction / timestamps", "temporal constraints", "internal/faults", "RepairTimestamps"},
		{"pre-processing", "fault correction / thematic values", "spatiotemporal dependency", "internal/faults", "RepairThematic"},
		// Pre-processing layer — Data Integration.
		{"pre-processing", "data integration / semantic (trajectory)", "spatiotemporal regularity (geo-semantics)", "internal/integrate", "Episodes"},
		{"pre-processing", "data integration / non-semantic (traj+traj)", "spatiotemporal dependency", "internal/integrate", "LinkEntities, AlignScales"},
		{"pre-processing", "data integration / non-semantic (traj+STID)", "spatiotemporal dependency", "internal/integrate", "AttachReadings"},
		{"pre-processing", "data integration / non-semantic (STID+STID)", "probabilistic modeling", "internal/uncertain", "FuseSources (bias-corrected)"},
		// Pre-processing layer — Data Reduction.
		{"pre-processing", "data reduction / trajectory (offline)", "error-bounded line simplification", "internal/reduce", "DouglasPeuckerSED"},
		{"pre-processing", "data reduction / trajectory (online)", "error-bounded line simplification", "internal/reduce", "SlidingWindow, SQUISH, DeadReckoning"},
		{"pre-processing", "data reduction / trajectory (direction)", "direction-bounded simplification", "internal/reduce", "DirectionPreserving"},
		{"pre-processing", "data reduction / network-constrained", "spatial constraint modeling", "internal/reduce", "EncodeNetworkTrip"},
		{"pre-processing", "data reduction / STID (lossless)", "entropy coding", "internal/reduce", "DeltaVarintEncode, RiceEncode"},
		{"pre-processing", "data reduction / STID (lossy)", "error-bounded compression", "internal/reduce", "LTC"},
		{"pre-processing", "data reduction / STID (prediction)", "prediction-based suppression", "internal/reduce", "SuppressConstant"},
		// Business layer — Querying.
		{"business", "querying / uncertainty (pdf models)", "probabilistic modeling", "internal/uquery", "GaussianObject, DiscreteObject"},
		{"business", "querying / uncertainty (range, kNN)", "bound-based pruning", "internal/uquery", "ProbRange, ProbKNN"},
		{"business", "querying / uncertainty (between samples)", "space-time prisms", "internal/uquery", "Prism"},
		{"business", "querying / uncertainty (possibly-definitely)", "space-time prisms", "internal/uquery", "PossiblyDefinitely, ClassifyRange"},
		{"business", "querying / uncertainty (between samples)", "first-order Markov grids", "internal/uquery", "MarkovGrid"},
		{"business", "querying / dynamics (continuous)", "safe regions", "internal/uquery", "SafeRegionMonitor"},
		{"business", "querying / dynamics (continuous kNN)", "safe regions", "internal/uquery", "KNNMonitor"},
		{"business", "querying / dynamics (streams)", "stream computing (watermarks)", "internal/uquery", "StreamRangeCounter"},
		{"business", "querying / decentralization", "distributed computing", "internal/uquery", "DistStore"},
		// Business layer — Analysis.
		{"business", "analysis / uncertain clustering", "probabilistic modeling", "internal/analysis", "UncertainDBSCAN"},
		{"business", "analysis / stream anomaly detection", "stream computing", "internal/analysis", "StreamAnomalyDetector"},
		{"business", "analysis / probabilistic frequent patterns", "probabilistic modeling", "internal/analysis", "FrequentPairs, ExtendPatterns"},
		{"business", "analysis / popular routes", "spatiotemporal regularity", "internal/analysis", "PopularRoute"},
		{"business", "analysis / bursty regions (streams)", "stream computing", "internal/analysis", "BurstDetector"},
		{"business", "analysis / co-evolving patterns", "spatially autocorrelated dependency", "internal/analysis", "CoEvolving"},
		{"business", "analysis / trajectory clustering", "spatiotemporal dependency (k-medoids)", "internal/analysis", "ClusterTrajectories"},
		{"business", "querying / symbolic (indoor) monitoring", "symbolic-space range monitoring", "internal/faults", "ZoneMonitor"},
		{"business", "analysis / uncertain trajectory similarity", "probabilistic modeling", "internal/analysis", "TopKSimilar"},
		// Business layer — Decision-making.
		{"business", "decision-making / next location", "incremental learning (Markov)", "internal/decide", "MarkovPredictor, Markov2Predictor"},
		{"business", "decision-making / traffic volume", "spatiotemporal dependency (shrinkage)", "internal/decide", "VolumeGrid"},
		{"business", "decision-making / POI recommendation", "probabilistic modeling", "internal/decide", "Recommender"},
		{"business", "decision-making / task assignment", "DQ-aware planning", "internal/decide", "AssignTasks"},
		{"business", "decision-making / decentralized models", "federated learning", "internal/decide", "FederatedVolume"},
		{"business", "decision-making / adaptive sampling", "reinforcement learning (bandit)", "internal/decide", "AdaptiveSampler"},
		{"business", "decision-making / site selection", "semi-supervised learning (PU)", "internal/decide", "PUSiteSelection"},
		{"business", "querying / privacy-preserving outsourcing", "spatial transformation", "internal/private", "Scheme, Client, Server"},
		// Middleware (open-issue directions).
		{"middleware", "DQ assessment", "quality dimensions framework", "internal/quality", "AssessTrajectory, AssessReadings"},
		{"middleware", "DQ-aware task planning", "rule-based planning", "internal/core", "Plan"},
		{"middleware", "quality management middleware", "pipeline composition", "internal/core", "Pipeline"},
	}
}

// RenderFigure2 renders the taxonomy as the Figure-2-shaped coverage
// table grouped by layer.
func RenderFigure2() string {
	var b strings.Builder
	entries := Taxonomy()
	lastLayer := ""
	for _, e := range entries {
		if e.Layer != lastLayer {
			fmt.Fprintf(&b, "\n[%s layer]\n", e.Layer)
			lastLayer = e.Layer
		}
		fmt.Fprintf(&b, "  %-55s | %-48s | %s: %s\n", e.Task, e.Technique, e.Package, e.Symbol)
	}
	return b.String()
}
