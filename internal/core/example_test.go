package core_test

import (
	"fmt"

	"sidq/internal/core"
	"sidq/internal/geo"
	"sidq/internal/quality"
	"sidq/internal/simulate"
	"sidq/internal/trajectory"
)

// ExamplePlanAndRun shows the middleware loop: assess a corrupted
// dataset, let the planner pick stages, run them, and check the
// movement on the consistency dimension.
func ExamplePlanAndRun() {
	region := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1000, 1000)}
	truth := simulate.RandomWalk("veh-0", region, 500, 2, 1, 7)
	dirty := simulate.AddGaussianNoise(truth, 8, 8)
	dirty, _ = simulate.InjectOutliers(dirty, 0.05, 120, 9)

	ds := &core.Dataset{
		Trajectories:     []*trajectory.Trajectory{dirty},
		Truth:            map[string]*trajectory.Trajectory{truth.ID: truth},
		Region:           region,
		ExpectedInterval: 1,
		MaxSpeed:         10,
	}
	cleaned, stages, _ := core.PlanAndRun(ds, core.DefaultTargets())
	for _, s := range stages {
		fmt.Println("stage:", s.Name())
	}
	fmt.Printf("consistency %.2f -> %.2f\n",
		ds.Assess()[quality.Consistency], cleaned.Assess()[quality.Consistency])
	// Output:
	// stage: outlier-removal
	// stage: kalman-smoothing
	// consistency 0.30 -> 1.00
}
