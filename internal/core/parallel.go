package core

// Data-parallel stage execution. A stage that declares
// StageTraits.Shardable runs over disjoint contiguous trajectory shards
// on a bounded worker pool; each shard keeps the full per-stage
// retry/backoff contract, a hard shard failure cancels its siblings
// (errgroup-style), and shard results merge back in trajectory order so
// the output is byte-identical to the serial path for deterministic
// stages. Readings travel with shard 0 only, mirroring the single
// readings pass a serial stage performs.

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"sidq/internal/quality"
	"sidq/internal/trajectory"
)

// ParallelRunner returns a runner with the default skip-stage policy
// that executes shardable stages and quality assessment across the
// given number of workers (workers <= 0 selects runtime.NumCPU()).
// For every worker count the run produces the same datasets, reports,
// and rollback decisions as the serial DefaultRunner, as long as the
// stages themselves are deterministic; only wall-clock time changes.
func ParallelRunner(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &Runner{Policy: SkipStage, Workers: workers}
}

// workerCount resolves the runner's Workers setting: 0 and 1 mean
// serial, negative selects runtime.NumCPU().
func (r *Runner) workerCount() int {
	switch {
	case r.Workers < 0:
		return runtime.NumCPU()
	case r.Workers == 0:
		return 1
	}
	return r.Workers
}

// shardable reports whether st should run sharded over cur: the runner
// has a pool, the stage declared trajectory-locality, and there is more
// than one trajectory to split.
func (r *Runner) shardable(st Stage, cur *Dataset) bool {
	return r.workerCount() > 1 && TraitsOf(st).Shardable && len(cur.Trajectories) >= 2
}

// cloneForStage returns the per-attempt working copy of ds for st: a
// copy-on-write clone when the stage declares it only replaces
// trajectory entries, a deep clone otherwise.
func cloneForStage(ds *Dataset, st Stage) *Dataset {
	if TraitsOf(st).ReplacesTrajectories {
		return ds.CloneCOW()
	}
	return ds.Clone()
}

// shardDataset splits ds into up to k contiguous trajectory shards.
// Every shard is a view: it shares trajectory pointers (and the
// assessment context) with ds; stages only ever see per-attempt clones
// of a shard, never the view itself. Readings ride on shard 0 alone so
// a readings pass happens exactly once, as in the serial path.
func shardDataset(ds *Dataset, k int) []*Dataset {
	n := len(ds.Trajectories)
	if k > n {
		k = n
	}
	shards := make([]*Dataset, k)
	base, rem := n/k, n%k
	lo := 0
	for i := 0; i < k; i++ {
		size := base
		if i < rem {
			size++
		}
		s := *ds
		s.Trajectories = ds.Trajectories[lo : lo+size : lo+size]
		if i != 0 {
			s.Readings = nil
		}
		shards[i] = &s
		lo += size
	}
	return shards
}

// runStageSharded executes one stage across trajectory shards on a
// bounded worker pool, with per-shard retries. It mirrors runStage's
// outcomes exactly: on success the merged dataset is returned with the
// post-stage assessment (and the rollback guard applied to it); on any
// hard shard failure the whole stage fails and the caller keeps cur,
// just as a serial stage failure discards all of the stage's work.
func (r *Runner) runStageSharded(ctx context.Context, st Stage, cur *Dataset, before quality.Assessment) (out *Dataset, rep StageReport) {
	rep = StageReport{
		Stage:  st.Name(),
		Task:   st.Task(),
		Before: before,
	}
	start := time.Now()
	defer func() {
		rep.Duration = time.Since(start)
		r.observeStage(&rep)
	}()

	shards := shardDataset(cur, r.workerCount())

	// Per-shard jitter RNGs are derived before any worker starts so the
	// parent RNG stream is consumed in a spawn-order-independent way.
	rngs := make([]*rand.Rand, len(shards))
	if r.Rand != nil {
		for i := range rngs {
			rngs[i] = rand.New(rand.NewSource(r.Rand.Int63()))
		}
	}

	type shardOut struct {
		ds       *Dataset
		err      error // nil or *PartialError on success, hard error on failure
		attempts int
	}
	outs := make([]shardOut, len(shards))
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	spawned := time.Now()
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			began := time.Now()
			ds, attempts, err := r.runShard(runCtx, st, shards[i], rngs[i])
			r.obsShard(st.Name(), i, began.Sub(spawned), time.Since(began))
			outs[i] = shardOut{ds: ds, err: err, attempts: attempts}
			if err != nil && !isPartial(err) {
				cancel() // a failed shard cancels its siblings
			}
		}(i)
	}
	wg.Wait()

	for i := range outs {
		if outs[i].attempts > rep.Attempts {
			rep.Attempts = outs[i].attempts
		}
	}

	// A hard failure in any shard fails the stage as a whole (serial
	// semantics: a failed stage contributes nothing). Prefer reporting a
	// genuine failure over a sibling's cancellation echo.
	var hardErr error
	for i := range outs {
		if e := outs[i].err; e != nil && !isPartial(e) {
			if hardErr == nil {
				hardErr = e
			}
			if !errors.Is(e, context.Canceled) {
				hardErr = e
				break
			}
		}
	}
	if hardErr != nil {
		rep.Err = hardErr
		if r.Policy == SkipStage || r.Policy == RollbackStage {
			rep.Skipped = true
			r.event(st.Name(), "skipped after %d attempts: %v", rep.Attempts, hardErr)
			r.obsSkip(st.Name(), rep.Attempts, hardErr)
		}
		return cur, rep
	}

	// Merge deterministically: trajectories in shard (= original) order,
	// readings from the shard that carried them.
	merged := new(Dataset)
	*merged = *cur
	merged.Trajectories = make([]*trajectory.Trajectory, 0, len(cur.Trajectories))
	for i := range outs {
		merged.Trajectories = append(merged.Trajectories, outs[i].ds.Trajectories...)
	}
	merged.Readings = outs[0].ds.Readings

	// Fold shard-level partial errors into one dataset-level one. All
	// built-in partially-failing stages denominate Total in
	// trajectories, so clean shards contribute their trajectory count —
	// matching what the serial stage would have reported.
	var failed, total int
	var lastPartial error
	sawPartial := false
	for i := range outs {
		if pe := (*PartialError)(nil); errors.As(outs[i].err, &pe) {
			sawPartial = true
			failed += pe.Failed
			total += pe.Total
			if pe.Last != nil {
				lastPartial = pe.Last
			}
		} else {
			total += len(outs[i].ds.Trajectories)
		}
	}
	if sawPartial {
		rep.Err = &PartialError{Stage: st.Name(), Failed: failed, Total: total, Last: lastPartial}
		rep.Meta = map[string]int{"failed": failed, "total": total}
	}

	rep.After = merged.AssessN(r.workerCount())
	if r.Policy == RollbackStage {
		if worse := r.regressions(rep.After, before); len(worse) > 0 {
			rep.RolledBack = true
			r.event(st.Name(), "rolled back: regressed %v", worse)
			r.obsRollback(st.Name())
			return cur, rep
		}
	}
	return merged, rep
}

// runShard runs the per-stage retry loop over one shard: every attempt
// clones the shard (copy-on-write when the stage allows it), so a
// failed attempt never leaks partial mutations. It returns the
// post-stage shard on success (possibly with a PartialError), or nil
// with the terminal error after retries are exhausted or the shard
// context is cancelled by a sibling.
func (r *Runner) runShard(ctx context.Context, st Stage, shard *Dataset, rng *rand.Rand) (*Dataset, int, error) {
	attempts := r.Retry.attempts()
	var lastErr error
	taken := 0
	for attempt := 1; attempt <= attempts; attempt++ {
		taken = attempt
		work := cloneForStage(shard, st)
		err := r.attempt(ctx, st, work)
		if err == nil || isPartial(err) {
			return work, taken, err
		}
		lastErr = err
		if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
			r.obsAttemptFailure(st.Name(), attempt, err, false)
			break // the shard group is cancelled; retrying cannot help
		}
		r.obsAttemptFailure(st.Name(), attempt, err, attempt < attempts)
		if attempt < attempts {
			if d := r.Retry.Delay(attempt, rng); d > 0 {
				sleep := r.Sleep
				if sleep == nil {
					sleep = time.Sleep
				}
				sleep(d)
			}
			r.event(st.Name(), "shard attempt %d/%d failed, retrying: %v", attempt, attempts, err)
		}
	}
	return nil, taken, lastErr
}
