package core

import (
	"context"
	"math/rand"
	"sync"
	"testing"
)

// TestColumnarScratchHammer hammers the columnar stage path from many
// goroutines over shared source trajectories: every worker drives
// ApplyContext on its own COW clone, so the pooled conversion scratch
// and flag buffers are constantly drawn, dirtied, and recycled
// concurrently while the underlying point slices are shared read-only.
// Run under -race (make race-hammer) this is the columnar
// shared-scratch safety gate; the result check makes it a determinism
// gate too — every worker must produce the identical cleaning.
func TestColumnarScratchHammer(t *testing.T) {
	ds := spikyDataset(rand.New(rand.NewSource(81)), 8, 200)
	st := OutlierRemovalStage{}

	want := ds.CloneCOW()
	if err := st.ApplyContext(context.Background(), want); err != nil {
		t.Fatal(err)
	}

	const workers, rounds = 8, 20
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				got := ds.CloneCOW()
				if err := st.ApplyContext(context.Background(), got); err != nil {
					errs <- err.Error()
					return
				}
				for i := range want.Trajectories {
					a, b := got.Trajectories[i], want.Trajectories[i]
					if a.Len() != b.Len() {
						errs <- "cleaned length diverged across goroutines"
						return
					}
					for j := range b.Points {
						if a.Points[j] != b.Points[j] {
							errs <- "cleaned points diverged across goroutines"
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestColumnarPipelineHammer runs whole parallel pipelines concurrently
// — shard workers inside each run, several runs racing each other — so
// the pooled columnar scratch is contended both within and across
// pipelines. Outputs must all match the serial run.
func TestColumnarPipelineHammer(t *testing.T) {
	ds := spikyDataset(rand.New(rand.NewSource(82)), 12, 120)
	p := NewPipeline(DeduplicateStage{}, OutlierRemovalStage{}, SmoothingStage{})
	want, _ := p.Run(ds)

	const concurrent = 6
	var wg sync.WaitGroup
	errs := make(chan string, concurrent)
	for w := 0; w < concurrent; w++ {
		wg.Add(1)
		go func(workers int) {
			defer wg.Done()
			got, _ := p.RunParallel(ds, workers)
			if len(got.Trajectories) != len(want.Trajectories) {
				errs <- "trajectory count diverged"
				return
			}
			for i := range want.Trajectories {
				a, b := got.Trajectories[i], want.Trajectories[i]
				if a.Len() != b.Len() {
					errs <- "pipeline output length diverged"
					return
				}
				for j := range b.Points {
					if a.Points[j] != b.Points[j] {
						errs <- "pipeline output points diverged"
						return
					}
				}
			}
		}(1 + w%4)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
