package core

import (
	"testing"

	"sidq/internal/geo"
	"sidq/internal/stid"
	"sidq/internal/trajectory"
)

func twoTrajDataset() *Dataset {
	mk := func(id string, x0 float64) *trajectory.Trajectory {
		pts := make([]trajectory.Point, 5)
		for i := range pts {
			pts[i] = trajectory.Point{T: float64(i), Pos: geo.Pt(x0+float64(i), float64(i))}
		}
		return &trajectory.Trajectory{ID: id, Points: pts}
	}
	return &Dataset{
		Trajectories: []*trajectory.Trajectory{mk("a", 0), mk("b", 100)},
		Readings: []stid.Reading{
			{SensorID: "s1", Pos: geo.Pt(1, 1), T: 0, Value: 10},
			{SensorID: "s2", Pos: geo.Pt(2, 2), T: 1, Value: 20},
		},
		MaxSpeed: 10,
	}
}

// TestCloneDeepCopyIsolation is the regression guard for the COW
// rewrite: Dataset.Clone stays a deep copy — mutations to a clone's
// points must never be visible in the parent, and vice versa.
func TestCloneDeepCopyIsolation(t *testing.T) {
	parent := twoTrajDataset()
	clone := parent.Clone()

	// Mutate every layer of the clone.
	clone.Trajectories[0].Points[0].Pos.X = 9999
	clone.Trajectories[0].Points[0].T = -1
	clone.Trajectories[1] = &trajectory.Trajectory{ID: "swapped"}
	clone.Readings[0].Value = -42

	if parent.Trajectories[0].Points[0].Pos.X == 9999 || parent.Trajectories[0].Points[0].T == -1 {
		t.Fatal("mutating a clone's points leaked into the parent")
	}
	if parent.Trajectories[1].ID != "b" {
		t.Fatal("replacing a clone entry leaked into the parent")
	}
	if parent.Readings[0].Value != 10 {
		t.Fatal("mutating a clone reading leaked into the parent")
	}

	// And the reverse direction.
	parent.Trajectories[0].Points[1].Pos.Y = -777
	parent.Readings[1].Value = -7
	if clone.Trajectories[0].Points[1].Pos.Y == -777 {
		t.Fatal("mutating the parent's points leaked into the clone")
	}
	if clone.Readings[1].Value != 20 {
		t.Fatal("mutating a parent reading leaked into the clone")
	}

	// Appends never alias.
	clone.Trajectories = append(clone.Trajectories, &trajectory.Trajectory{ID: "extra"})
	if len(parent.Trajectories) != 2 {
		t.Fatal("appending to a clone grew the parent")
	}
}

// TestCloneCOWContract pins the copy-on-write contract: slice entries
// and readings are isolated, while trajectory pointers are shared until
// replaced — exactly what ReplacesTrajectories stages rely on.
func TestCloneCOWContract(t *testing.T) {
	parent := twoTrajDataset()
	cow := parent.CloneCOW()

	// Entry replacement is isolated in both directions.
	cow.Trajectories[0] = &trajectory.Trajectory{ID: "fresh"}
	if parent.Trajectories[0].ID != "a" {
		t.Fatal("replacing a COW entry leaked into the parent")
	}
	parent.Trajectories[1] = &trajectory.Trajectory{ID: "other"}
	if cow.Trajectories[1].ID != "b" {
		t.Fatal("replacing a parent entry leaked into the COW clone")
	}

	// Readings are value copies.
	cow.Readings[0].Value = -1
	if parent.Readings[0].Value != 10 {
		t.Fatal("COW readings alias the parent")
	}

	// Unreplaced trajectory pointers are shared — the documented
	// contract that makes the clone cheap.
	if cow.Trajectories[1] == parent.Trajectories[1] {
		t.Fatal("expected shard 1 to differ after the parent replaced it")
	}
	cow2 := parent.CloneCOW()
	if cow2.Trajectories[0] != parent.Trajectories[0] {
		t.Fatal("COW clone must share unreplaced trajectory pointers")
	}
}

// TestRunnerOutputIsolatedFromInput ensures the runner's COW fast path
// never lets a stage's output alias the caller's input dataset in a way
// that a later in-place edit of the output could corrupt the input.
func TestRunnerOutputIsolatedFromInput(t *testing.T) {
	ds := dirtyDataset(23)
	origX := ds.Trajectories[0].Points[0].Pos.X
	out, _ := NewPipeline(SmoothingStage{}, DeduplicateStage{}).Run(ds)
	for i := range out.Trajectories {
		for j := range out.Trajectories[i].Points {
			out.Trajectories[i].Points[j].Pos.X = -1e9
		}
	}
	if ds.Trajectories[0].Points[0].Pos.X != origX {
		t.Fatal("pipeline output aliases the input dataset")
	}
}
