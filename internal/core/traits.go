package core

// StageTraits declares execution properties the Runner can exploit to
// run a stage faster. The zero value is the conservative contract every
// legacy stage gets: deep-cloned inputs and strictly serial execution.
type StageTraits struct {
	// Shardable means the stage's trajectory work is trajectory-local —
	// processing trajectory i reads and writes only ds.Trajectories[i]
	// (never another trajectory, and never a dataset-wide statistic over
	// them) — and its readings work touches ds.Readings as one
	// self-contained pass. The Runner may then split the dataset into
	// disjoint contiguous trajectory shards and apply the stage to every
	// shard concurrently; the readings travel with exactly one shard.
	Shardable bool
	// ReplacesTrajectories means the stage never mutates a trajectory's
	// point slice in place: it only swaps ds.Trajectories[i] for a fresh
	// value (it may freely rewrite ds.Readings, which every clone copies
	// by value). Such stages run on cheap copy-on-write clones that
	// share trajectory pointers with the parent dataset instead of
	// deep-copying every point.
	ReplacesTrajectories bool
	// Columnar means the stage implements ColumnarStage and wants the
	// runner to drive its trajectory work through the struct-of-arrays
	// path: pooled Columns conversion in, batch kernels, fresh
	// trajectory out. Implies ReplacesTrajectories semantics for the
	// trajectory side (each entry is swapped for a materialized copy).
	// Stages that set it receive columns; everything else keeps
	// receiving []Point through Apply/ApplyContext.
	Columnar bool
}

// TraitedStage is implemented by stages that declare execution traits.
// Wrapper stages should forward their inner stage's traits when the
// wrapper itself adds no cross-trajectory coupling.
type TraitedStage interface {
	Stage
	Traits() StageTraits
}

// TraitsOf returns a stage's declared traits, or the conservative zero
// traits for stages that declare none.
func TraitsOf(st Stage) StageTraits {
	if ts, ok := st.(TraitedStage); ok {
		return ts.Traits()
	}
	return StageTraits{}
}

// dataParallel is the trait set shared by every built-in stage: all of
// them are trajectory-local and replace-only.
var dataParallel = StageTraits{Shardable: true, ReplacesTrajectories: true}

// columnarDataParallel is dataParallel plus the columnar batch-kernel
// path — the trait set of stages whose hot loops run on flat columns.
var columnarDataParallel = StageTraits{Shardable: true, ReplacesTrajectories: true, Columnar: true}
