package core

// Columnar stage execution. Stages whose trajectory work is expressed
// as flat batch kernels over trajectory.Columns declare the Columnar
// trait and implement ColumnarStage; the runner then owns the
// AoS<->SoA conversion with pooled scratch, so a steady-state pipeline
// allocates only the output points of each trajectory. Stages without
// the trait keep receiving []Point via Apply/ApplyContext, and the
// CloneCOW + sharding contracts are unchanged: the columnar path still
// only replaces ds.Trajectories[i] entries, never mutates points in
// place.

import (
	"context"
	"sync"

	"sidq/internal/trajectory"
)

// ColumnarStage is the batch-kernel stage contract: per-trajectory work
// runs on struct-of-arrays columns handed in by the runner, and any
// non-trajectory remainder (typically the readings pass) runs once
// afterwards. Implementations must also set StageTraits.Columnar; the
// runner dispatches on the trait so a wrapper stage can suppress the
// columnar path by clearing it.
type ColumnarStage interface {
	Stage
	// TransformColumns rewrites one trajectory, given as src, into dst.
	// Both are runner-owned scratch: src is valid only for the duration
	// of the call, and dst arrives with undefined contents (capacity is
	// reused across trajectories; implementations reset it, as the
	// columnar kernels' dst-filling helpers do). ds supplies
	// dataset-wide parameters (MaxSpeed, Region, ...) and must not be
	// mutated here.
	TransformColumns(dst, src *trajectory.Columns, ds *Dataset)
	// FinishColumns runs the stage's non-columnar remainder after every
	// trajectory has been transformed — the readings pass for the
	// built-in stages. It sees the dataset with trajectories already
	// replaced.
	FinishColumns(ctx context.Context, ds *Dataset) error
}

// columnarScratch is the per-application conversion scratch: one source
// and one destination Columns reused across every trajectory of a
// dataset (and across stage applications via the pool).
type columnarScratch struct {
	src, dst trajectory.Columns
}

var columnarScratchPool = sync.Pool{New: func() any { return new(columnarScratch) }}

// applyColumnarStage runs cs over ds trajectory by trajectory through
// pooled column scratch, then hands off to FinishColumns. Each
// trajectory is materialized fresh (ReplacesTrajectories semantics), so
// the path is safe on copy-on-write clones and under sharding; shard
// workers draw independent scratch from the pool. Output is
// bit-identical to the stage's AoS form — the columnar kernels compute
// the same expression sequences, and the goldens pin it at every worker
// count.
func applyColumnarStage(ctx context.Context, cs ColumnarStage, ds *Dataset) error {
	scr := columnarScratchPool.Get().(*columnarScratch)
	defer columnarScratchPool.Put(scr)
	for i, tr := range ds.Trajectories {
		if err := ctx.Err(); err != nil {
			return err
		}
		scr.src.FromTrajectory(tr)
		cs.TransformColumns(&scr.dst, &scr.src, ds)
		ds.Trajectories[i] = scr.dst.Trajectory(tr.ID)
	}
	return cs.FinishColumns(ctx, ds)
}
