package core

import (
	"context"

	"sidq/internal/quality"
)

// Targets is a quality target profile for the planner: the thresholds
// a dataset must meet. Zero-valued fields are ignored.
type Targets struct {
	MinConsistency    float64 // e.g. 0.95
	MaxPrecisionError float64 // meters
	MinCompleteness   float64 // [0, 1]
	MaxRedundancy     float64 // [0, 1]
	MaxTimestampGap   float64 // enables timestamp repair with [0, gap]
}

// DefaultTargets is a reasonable profile for consumer applications.
func DefaultTargets() Targets {
	return Targets{
		MinConsistency:    0.95,
		MaxPrecisionError: 5,
		MinCompleteness:   0.9,
		MaxRedundancy:     0.01,
	}
}

// Plan inspects an assessment and returns the stages needed to reach
// the targets, in a dependency-respecting order:
//
//  1. deduplication (redundancy) — before anything that would smear
//     duplicates around;
//  2. timestamp repair (ordering faults) — before motion models that
//     assume monotone time;
//  3. outlier removal (consistency) — before smoothing, which would
//     otherwise drag estimates toward gross errors;
//  4. smoothing (precision);
//  5. interpolation imputation (completeness) — last, so it fills from
//     already-clean data.
//
// This is the paper's "DQ-aware task planning" open issue realized for
// the single-node case.
func Plan(a quality.Assessment, t Targets) []Stage {
	var stages []Stage
	if v, ok := a[quality.Redundancy]; ok && t.MaxRedundancy > 0 && v > t.MaxRedundancy {
		stages = append(stages, DeduplicateStage{})
	}
	if t.MaxTimestampGap > 0 {
		stages = append(stages, TimestampRepairStage{MinGap: 0, MaxGap: t.MaxTimestampGap})
	}
	if v, ok := a[quality.Consistency]; ok && t.MinConsistency > 0 && v < t.MinConsistency {
		stages = append(stages, OutlierRemovalStage{})
	}
	if v, ok := a[quality.PrecisionError]; ok && t.MaxPrecisionError > 0 && v > t.MaxPrecisionError {
		stages = append(stages, SmoothingStage{})
	}
	if v, ok := a[quality.Completeness]; ok && t.MinCompleteness > 0 && v < t.MinCompleteness {
		stages = append(stages, ImputeStage{})
	}
	return stages
}

// PlanAndRun assesses, plans, and executes in one call, returning the
// cleaned dataset, the plan, and the per-stage reports.
func PlanAndRun(ds *Dataset, t Targets) (*Dataset, []Stage, []StageReport) {
	stages := Plan(ds.Assess(), t)
	out, reports := NewPipeline(stages...).Run(ds)
	return out, stages, reports
}

// PlanAndRunIterative repeats assess-plan-run until the targets are met
// or no further stages are planned, up to maxRounds rounds. Cleaning
// can itself create deficits (dropping outliers lowers completeness,
// for example), which a single planning pass cannot anticipate; the
// re-assessment loop closes that gap. A stage type is applied at most
// once across rounds to guarantee termination.
func PlanAndRunIterative(ds *Dataset, t Targets, maxRounds int) (*Dataset, []Stage, []StageReport) {
	out, stages, reports, _ := PlanAndRunIterativeWith(context.Background(), nil, ds, t, maxRounds)
	return out, stages, reports
}

// PlanAndRunIterativeWith is PlanAndRunIterative executing on the
// caller's runner (nil selects DefaultRunner) — the hook services and
// CLIs use to attach observability, retry policies, or worker pools to
// planned cleaning. The error is non-nil only when the runner's policy
// surfaces one (FailFast) or ctx is cancelled; the returned dataset
// then reflects the progress made before the failure.
func PlanAndRunIterativeWith(ctx context.Context, r *Runner, ds *Dataset, t Targets, maxRounds int) (*Dataset, []Stage, []StageReport, error) {
	if maxRounds < 1 {
		maxRounds = 1
	}
	if r == nil {
		r = DefaultRunner()
	}
	cur := ds
	var allStages []Stage
	var allReports []StageReport
	applied := map[string]bool{}
	for round := 0; round < maxRounds; round++ {
		var stages []Stage
		for _, s := range Plan(cur.Assess(), t) {
			if applied[s.Name()] {
				continue
			}
			applied[s.Name()] = true
			stages = append(stages, s)
		}
		if len(stages) == 0 {
			break
		}
		out, reports, err := NewPipeline(stages...).RunContext(ctx, r, cur)
		cur = out
		allStages = append(allStages, stages...)
		allReports = append(allReports, reports...)
		if err != nil {
			return cur, allStages, allReports, err
		}
	}
	return cur, allStages, allReports, nil
}
