package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"sidq/internal/obs"
)

// noopShardStage is a do-nothing shardable stage, for observing the
// runner's bookkeeping without any stage-side noise.
type noopShardStage struct{}

func (noopShardStage) Name() string        { return "noop" }
func (noopShardStage) Task() Task          { return FaultCorrection }
func (noopShardStage) Apply(ds *Dataset)   {}
func (noopShardStage) Traits() StageTraits { return dataParallel }

func TestRunnerObsRetriesAndStageMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	sink := &obs.MemSink{}
	calls := 0
	st := scriptedStage{name: "flaky", calls: &calls, fn: func(ctx context.Context, ds *Dataset) error {
		if calls <= 2 {
			return errors.New("transient")
		}
		return nil
	}}
	r := &Runner{
		Policy: SkipStage,
		Retry:  RetryPolicy{MaxAttempts: 4},
		Obs:    reg,
		Trace:  sink,
	}
	_, reports, err := NewPipeline(st).RunContext(context.Background(), r, dirtyDataset(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || reports[0].Attempts != 3 {
		t.Fatalf("reports = %+v, want one report with 3 attempts", reports)
	}
	if reports[0].Duration <= 0 {
		t.Fatalf("report Duration = %v, want > 0", reports[0].Duration)
	}
	if got := reg.Counter("sidq_runner_retries_total").Value(); got != 2 {
		t.Fatalf("retries_total = %d, want 2", got)
	}
	if got := sink.Count(obs.KindRetry); got != 2 {
		t.Fatalf("retry trace events = %d, want 2", got)
	}
	if got := sink.Count(obs.KindStage); got != 1 {
		t.Fatalf("stage trace events = %d, want 1", got)
	}
	if got := reg.Counter(`sidq_runner_stage_total{stage="flaky",outcome="ok"}`).Value(); got != 1 {
		t.Fatalf("stage_total{ok} = %d, want 1", got)
	}
	if got := reg.Histogram(`sidq_runner_stage_latency_ns{stage="flaky"}`).Snapshot().Count(); got != 1 {
		t.Fatalf("stage latency observations = %d, want 1", got)
	}
}

func TestRunnerObsPanicAndSkip(t *testing.T) {
	reg := obs.NewRegistry()
	sink := &obs.MemSink{}
	r := &Runner{Policy: SkipStage, Obs: reg, Trace: sink}
	_, reports, err := NewPipeline(legacyPanicStage{}).RunContext(context.Background(), r, dirtyDataset(1))
	if err != nil {
		t.Fatal(err)
	}
	if !reports[0].Skipped {
		t.Fatal("stage not skipped")
	}
	if got := reg.Counter("sidq_runner_panics_total").Value(); got != 1 {
		t.Fatalf("panics_total = %d, want 1", got)
	}
	if got := reg.Counter("sidq_runner_skips_total").Value(); got != 1 {
		t.Fatalf("skips_total = %d, want 1", got)
	}
	if got := sink.Count(obs.KindPanic); got != 1 {
		t.Fatalf("panic trace events = %d, want 1", got)
	}
	if got := sink.CountName(obs.KindSkip, "legacy-panic"); got != 1 {
		t.Fatalf("skip trace events = %d, want 1", got)
	}
	if got := reg.Counter(`sidq_runner_stage_total{stage="legacy-panic",outcome="skipped"}`).Value(); got != 1 {
		t.Fatalf("stage_total{skipped} = %d, want 1", got)
	}
}

func TestParallelRunnerObsShards(t *testing.T) {
	const workers = 4
	reg := obs.NewRegistry()
	sink := &obs.MemSink{}
	r := &Runner{Policy: SkipStage, Workers: workers, Obs: reg, Trace: sink}
	ds := wideDataset(3, 12)
	_, reports, err := NewPipeline(noopShardStage{}).RunContext(context.Background(), r, ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || reports[0].Err != nil {
		t.Fatalf("unexpected reports: %+v", reports)
	}
	if got := sink.Count(obs.KindShard); got != workers {
		t.Fatalf("shard trace events = %d, want %d", got, workers)
	}
	if got := reg.Histogram("sidq_runner_shard_queue_wait_ns").Snapshot().Count(); got != workers {
		t.Fatalf("shard queue-wait observations = %d, want %d", got, workers)
	}
	if got := sink.Count(obs.KindStage); got != 1 {
		t.Fatalf("stage trace events = %d, want 1", got)
	}
}

func TestInitRunnerMetricsPreregisters(t *testing.T) {
	reg := obs.NewRegistry()
	InitRunnerMetrics(reg)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, fam := range []string{mRetries, mPanics, mRollbacks, mSkips, mShardQueueWait} {
		if !strings.Contains(out, "# TYPE "+fam+" ") {
			t.Errorf("exposition missing family %s:\n%s", fam, out)
		}
	}
}

// BenchmarkRunnerObsOverhead is the zero-overhead guard: the "off"
// case (no registry, no sink — the production default) must stay
// within noise of the pre-change runner, and is the number tracked by
// the committed BENCH_*.json baselines. The "attached" case bounds
// what full instrumentation costs.
func BenchmarkRunnerObsOverhead(b *testing.B) {
	ds := dirtyDataset(7)
	p := NewPipeline(noopShardStage{}, noopShardStage{}, noopShardStage{})
	run := func(b *testing.B, r *Runner) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := p.RunContext(context.Background(), r, ds); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) {
		run(b, &Runner{Policy: SkipStage})
	})
	b.Run("attached", func(b *testing.B) {
		run(b, &Runner{Policy: SkipStage, Obs: obs.NewRegistry(), Trace: obs.FuncSink(func(obs.TraceEvent) {})})
	})
}
