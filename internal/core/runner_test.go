package core

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"sidq/internal/quality"
)

// scriptedStage is a FallibleStage driven by a test callback.
type scriptedStage struct {
	name  string
	calls *int
	fn    func(ctx context.Context, ds *Dataset) error
}

func (s scriptedStage) Name() string { return s.name }
func (s scriptedStage) Task() Task   { return FaultCorrection }
func (s scriptedStage) Apply(ds *Dataset) {
	_ = s.ApplyContext(context.Background(), ds)
}
func (s scriptedStage) ApplyContext(ctx context.Context, ds *Dataset) error {
	if s.calls != nil {
		*s.calls++
	}
	return s.fn(ctx, ds)
}

// legacyPanicStage implements only the legacy Stage contract and
// panics — the failure mode that used to kill the whole run.
type legacyPanicStage struct{}

func (legacyPanicStage) Name() string      { return "legacy-panic" }
func (legacyPanicStage) Task() Task        { return FaultCorrection }
func (legacyPanicStage) Apply(ds *Dataset) { panic("boom") }

func TestRetryPolicyDelaySchedule(t *testing.T) {
	cases := []struct {
		name     string
		p        RetryPolicy
		attempts []int
		want     []time.Duration
	}{
		{
			name:     "zero policy never waits",
			p:        RetryPolicy{},
			attempts: []int{1, 2, 3},
			want:     []time.Duration{0, 0, 0},
		},
		{
			name:     "default multiplier doubles",
			p:        RetryPolicy{MaxAttempts: 5, BaseDelay: 100 * time.Millisecond},
			attempts: []int{1, 2, 3, 4},
			want: []time.Duration{
				100 * time.Millisecond, 200 * time.Millisecond,
				400 * time.Millisecond, 800 * time.Millisecond,
			},
		},
		{
			name: "cap clamps the tail",
			p: RetryPolicy{
				MaxAttempts: 5, BaseDelay: 100 * time.Millisecond,
				MaxDelay: 250 * time.Millisecond,
			},
			attempts: []int{1, 2, 3, 4},
			want: []time.Duration{
				100 * time.Millisecond, 200 * time.Millisecond,
				250 * time.Millisecond, 250 * time.Millisecond,
			},
		},
		{
			name: "custom multiplier",
			p: RetryPolicy{
				MaxAttempts: 4, BaseDelay: 10 * time.Millisecond, Multiplier: 3,
			},
			attempts: []int{1, 2, 3},
			want: []time.Duration{
				10 * time.Millisecond, 30 * time.Millisecond, 90 * time.Millisecond,
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for i, a := range tc.attempts {
				if got := tc.p.Delay(a, nil); got != tc.want[i] {
					t.Fatalf("Delay(%d) = %v, want %v", a, got, tc.want[i])
				}
			}
		})
	}
}

func TestRetryPolicyJitterDeterministicAndBounded(t *testing.T) {
	p := RetryPolicy{BaseDelay: 100 * time.Millisecond, JitterFrac: 0.3}
	a := p.Delay(2, rand.New(rand.NewSource(42)))
	b := p.Delay(2, rand.New(rand.NewSource(42)))
	if a != b {
		t.Fatalf("same seed produced different delays: %v vs %v", a, b)
	}
	base := 200 * time.Millisecond
	lo := time.Duration(float64(base) * 0.7)
	hi := time.Duration(float64(base) * 1.3)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		d := p.Delay(2, rng)
		if d < lo || d > hi {
			t.Fatalf("jittered delay %v outside [%v, %v]", d, lo, hi)
		}
	}
}

func TestRunnerRetriesWithBackoffNoRealSleeps(t *testing.T) {
	ds := dirtyDataset(11)
	calls := 0
	st := scriptedStage{name: "flaky", calls: &calls, fn: func(ctx context.Context, ds *Dataset) error {
		if calls <= 2 {
			return errors.New("transient")
		}
		return nil
	}}
	var slept []time.Duration
	r := &Runner{
		Policy: FailFast,
		Retry:  RetryPolicy{MaxAttempts: 5, BaseDelay: 100 * time.Millisecond},
		Sleep:  func(d time.Duration) { slept = append(slept, d) },
	}
	start := time.Now()
	_, reports, err := r.Run(context.Background(), NewPipeline(st), ds)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("runner slept for real: %v", elapsed)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if reports[0].Attempts != 3 || reports[0].Err != nil || reports[0].Skipped {
		t.Fatalf("report = %+v", reports[0])
	}
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("backoff %d = %v, want %v", i, slept[i], want[i])
		}
	}
}

func TestRunnerRetriesAreBounded(t *testing.T) {
	ds := dirtyDataset(12)
	calls := 0
	st := scriptedStage{name: "always-fails", calls: &calls, fn: func(ctx context.Context, ds *Dataset) error {
		return errors.New("permanent")
	}}
	r := &Runner{
		Policy: SkipStage,
		Retry:  RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond},
		Sleep:  func(time.Duration) {},
	}
	_, reports, err := r.Run(context.Background(), NewPipeline(st), ds)
	if err != nil {
		t.Fatalf("skip policy surfaced error: %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want exactly MaxAttempts", calls)
	}
	if !reports[0].Skipped || reports[0].Attempts != 3 || reports[0].Err == nil {
		t.Fatalf("report = %+v", reports[0])
	}
}

func TestRunnerRecoversPanics(t *testing.T) {
	ds := dirtyDataset(13)
	before := ds.Assess()

	// Legacy stage panic under SkipStage: pipeline survives, work kept
	// from the healthy stages.
	p := NewPipeline(legacyPanicStage{}, DeduplicateStage{})
	out, reports := p.Run(ds) // default runner: skip
	if out == nil || len(reports) != 2 {
		t.Fatalf("reports = %d", len(reports))
	}
	if !reports[0].Skipped || reports[0].Err == nil || !strings.Contains(reports[0].Err.Error(), "panicked") {
		t.Fatalf("panic report = %+v", reports[0])
	}
	if reports[1].Skipped {
		t.Fatal("healthy stage skipped")
	}
	if out.Assess()[quality.Redundancy] >= before[quality.Redundancy] {
		t.Fatal("dedup after panic did not run")
	}

	// FallibleStage panic with retries: every attempt is recovered.
	calls := 0
	st := scriptedStage{name: "panicky", calls: &calls, fn: func(ctx context.Context, ds *Dataset) error {
		panic("each attempt panics")
	}}
	r := &Runner{Policy: FailFast, Retry: RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond}, Sleep: func(time.Duration) {}}
	_, _, err := r.Run(context.Background(), NewPipeline(st), ds)
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("fail-fast panic error = %v", err)
	}
	if calls != 2 {
		t.Fatalf("panic attempts = %d", calls)
	}
}

func TestRunnerFailFastReturnsProgress(t *testing.T) {
	ds := dirtyDataset(14)
	st := scriptedStage{name: "fatal", fn: func(ctx context.Context, ds *Dataset) error {
		return errors.New("db down")
	}}
	p := NewPipeline(DeduplicateStage{}, st, SmoothingStage{})
	r := &Runner{Policy: FailFast}
	out, reports, err := r.Run(context.Background(), p, ds)
	if err == nil || !strings.Contains(err.Error(), "db down") {
		t.Fatalf("err = %v", err)
	}
	// Progress up to the failure is returned: dedup ran, smoothing never.
	if len(reports) != 2 {
		t.Fatalf("reports = %d", len(reports))
	}
	if out.Assess()[quality.Redundancy] >= ds.Assess()[quality.Redundancy] {
		t.Fatal("pre-failure stage work lost")
	}
}

func TestRunnerQualityRegressionRollback(t *testing.T) {
	ds := dirtyDataset(15)
	corrupt := scriptedStage{name: "corruptor", fn: func(ctx context.Context, ds *Dataset) error {
		for _, tr := range ds.Trajectories {
			for i := range tr.Points {
				tr.Points[i].Pos.X += 1e4
				tr.Points[i].Pos.Y -= 1e4
			}
		}
		return nil // "succeeds" while making everything worse
	}}
	r := &Runner{Policy: RollbackStage, GuardDims: []quality.Dimension{quality.Accuracy}}
	out, reports, err := r.Run(context.Background(), NewPipeline(corrupt), ds)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !reports[0].RolledBack {
		t.Fatalf("corrupting stage not rolled back: %+v", reports[0])
	}
	// The whole pipeline was sabotage, so the output must carry the
	// input's exact quality.
	beforeA := ds.Assess()[quality.Accuracy]
	afterA := out.Assess()[quality.Accuracy]
	if afterA != beforeA {
		t.Fatalf("rollback failed to protect accuracy: %v -> %v", beforeA, afterA)
	}
	if !strings.Contains(RenderReports(reports), "rolled back") {
		t.Fatal("rollback not rendered")
	}

	// A healthy stage after a rolled-back one still runs and keeps its
	// work.
	out2, reports2, err := r.Run(context.Background(), NewPipeline(corrupt, DeduplicateStage{}), ds)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if reports2[1].Skipped || reports2[1].RolledBack {
		t.Fatalf("healthy stage affected: %+v", reports2[1])
	}
	if out2.Assess()[quality.Redundancy] >= ds.Assess()[quality.Redundancy] {
		t.Fatal("dedup after rollback did not run")
	}
}

func TestRunnerStageDeadlineCancelsRunaway(t *testing.T) {
	ds := dirtyDataset(16)
	st := scriptedStage{name: "runaway", fn: func(ctx context.Context, ds *Dataset) error {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(5 * time.Second):
			return nil
		}
	}}
	r := &Runner{Policy: SkipStage, StageTimeout: 10 * time.Millisecond, Retry: RetryPolicy{MaxAttempts: 2}}
	start := time.Now()
	_, reports, err := r.Run(context.Background(), NewPipeline(st), ds)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("deadline did not cancel the stage")
	}
	rep := reports[0]
	if !rep.Skipped || rep.Attempts != 2 || !errors.Is(rep.Err, context.DeadlineExceeded) {
		t.Fatalf("report = %+v", rep)
	}
}

func TestRunnerParentCancellation(t *testing.T) {
	ds := dirtyDataset(17)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := DefaultRunner().Run(ctx, NewPipeline(DeduplicateStage{}), ds)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run err = %v", err)
	}
}

func TestRunnerPartialErrorKeepsWork(t *testing.T) {
	ds := dirtyDataset(18)
	calls := 0
	st := scriptedStage{name: "partial", calls: &calls, fn: func(ctx context.Context, ds *Dataset) error {
		// Do real work, then report a degraded completion.
		_ = DeduplicateStage{}.ApplyContext(ctx, ds)
		return &PartialError{Stage: "partial", Failed: 2, Total: 10}
	}}
	r := &Runner{Policy: FailFast, Retry: RetryPolicy{MaxAttempts: 3}}
	out, reports, err := r.Run(context.Background(), NewPipeline(st), ds)
	if err != nil {
		t.Fatalf("partial error escalated to run failure: %v", err)
	}
	if calls != 1 {
		t.Fatalf("partial completion retried: calls = %d", calls)
	}
	rep := reports[0]
	var pe *PartialError
	if !errors.As(rep.Err, &pe) || rep.Skipped {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Meta["failed"] != 2 || rep.Meta["total"] != 10 {
		t.Fatalf("meta = %v", rep.Meta)
	}
	if out.Assess()[quality.Redundancy] >= ds.Assess()[quality.Redundancy] {
		t.Fatal("partial stage's work discarded")
	}
	if !strings.Contains(RenderReports(reports), "degraded") {
		t.Fatal("partial completion not rendered")
	}
}

func TestRouteRecoverSurfacesMapMatchFailures(t *testing.T) {
	// A graph-less snapper cannot be built here; instead exercise the
	// failure path with trajectories the matcher must reject (empty),
	// via the public contract: nil graph is a clean no-op, and the
	// PartialError carries exact counts when matching fails.
	if err := (RouteRecoverStage{}).ApplyContext(context.Background(), dirtyDataset(19)); err != nil {
		t.Fatalf("nil graph should no-op, got %v", err)
	}
}

func TestFailurePolicyString(t *testing.T) {
	for p, want := range map[FailurePolicy]string{
		FailFast: "fail-fast", SkipStage: "skip-stage", RollbackStage: "rollback-stage",
	} {
		if p.String() != want {
			t.Fatalf("%d.String() = %q", p, p.String())
		}
	}
	if !strings.Contains(FailurePolicy(9).String(), "policy(") {
		t.Fatal("unknown policy")
	}
}
