package core

import (
	"strings"
	"testing"

	"sidq/internal/geo"
	"sidq/internal/quality"
	"sidq/internal/roadnet"
	"sidq/internal/simulate"
	"sidq/internal/trajectory"
)

// dirtyDataset builds a dataset with injected noise, outliers,
// duplicates, and dropouts, plus ground truth.
func dirtyDataset(seed int64) *Dataset {
	region := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1000, 1000)}
	ds := &Dataset{
		Truth:            map[string]*trajectory.Trajectory{},
		Region:           region,
		ExpectedInterval: 1,
		MaxSpeed:         10,
		Now:              600,
	}
	for i := 0; i < 3; i++ {
		truth := simulate.RandomWalk("v"+string(rune('0'+i)), region, 600, 2, 1, seed+int64(i))
		ds.Truth[truth.ID] = truth
		// Noise before duplication so duplicates stay exact copies.
		dirty := simulate.AddGaussianNoise(truth, 6, seed+20+int64(i))
		dirty, _ = simulate.InjectOutliers(dirty, 0.03, 120, seed+30+int64(i))
		dirty = simulate.DropSamples(dirty, 0.2, seed+40+int64(i))
		dirty = simulate.DuplicateSamples(dirty, 0.1, seed+10+int64(i))
		ds.Trajectories = append(ds.Trajectories, dirty)
	}
	f := simulate.NewField(simulate.FieldOptions{Seed: seed + 100})
	_, readings := simulate.SensorNetwork(f, simulate.SensorNetworkOptions{
		NumSensors: 20, Interval: 60, Duration: 600, NoiseSigma: 1, Seed: seed + 101,
	})
	readings, _ = simulate.InjectValueOutliers(readings, 0.05, 60, seed+102)
	ds.Readings = readings
	ds.TruthField = f.Value
	ds.ReadingInterval = 60
	ds.NumSensors = 20
	ds.Duration = 600
	return ds
}

func TestDatasetAssess(t *testing.T) {
	ds := dirtyDataset(1)
	a := ds.Assess()
	if a[quality.DataVolume] <= 0 {
		t.Fatal("no volume")
	}
	if v, ok := a[quality.Accuracy]; !ok || v <= 0 || v >= 1 {
		t.Fatalf("accuracy = %v (%v)", v, ok)
	}
	if v := a[quality.Consistency]; v >= 0.995 {
		t.Fatalf("dirty data should violate consistency: %v", v)
	}
	if v := a[quality.Redundancy]; v <= 0 {
		t.Fatalf("duplicates not measured: %v", v)
	}
	// Parts are separable.
	trA, rdA := ds.AssessParts()
	if trA[quality.DataVolume] <= 0 || rdA[quality.DataVolume] <= 0 {
		t.Fatal("parts missing volume")
	}
}

func TestPipelineImprovesQuality(t *testing.T) {
	ds := dirtyDataset(2)
	before := ds.Assess()
	p := NewPipeline(
		DeduplicateStage{},
		OutlierRemovalStage{},
		SmoothingStage{},
		ImputeStage{},
	)
	cleaned, reports := p.Run(ds)
	after := cleaned.Assess()
	if len(reports) != 4 {
		t.Fatalf("reports = %d", len(reports))
	}
	if after[quality.Accuracy] <= before[quality.Accuracy] {
		t.Fatalf("accuracy: %v -> %v", before[quality.Accuracy], after[quality.Accuracy])
	}
	if after[quality.PrecisionError] >= before[quality.PrecisionError] {
		t.Fatalf("precision error: %v -> %v", before[quality.PrecisionError], after[quality.PrecisionError])
	}
	if after[quality.Redundancy] >= before[quality.Redundancy] {
		t.Fatalf("redundancy: %v -> %v", before[quality.Redundancy], after[quality.Redundancy])
	}
	if after[quality.Consistency] <= before[quality.Consistency] {
		t.Fatalf("consistency: %v -> %v", before[quality.Consistency], after[quality.Consistency])
	}
	// Original dataset untouched (pipeline clones).
	again := ds.Assess()
	for _, d := range quality.AllDimensions() {
		if again[d] != before[d] {
			t.Fatalf("pipeline mutated input: %v changed", d)
		}
	}
	// Reports render.
	if !strings.Contains(RenderReports(reports), "kalman-smoothing") {
		t.Fatal("report rendering")
	}
}

func TestStageOrderMatters(t *testing.T) {
	// Ablation: smoothing before outlier removal drags estimates toward
	// the outliers; the planner's order should beat the reversed order.
	ds := dirtyDataset(3)
	good := NewPipeline(OutlierRemovalStage{}, SmoothingStage{})
	bad := NewPipeline(SmoothingStage{}, OutlierRemovalStage{})
	cleanedGood, _ := good.Run(ds)
	cleanedBad, _ := bad.Run(ds)
	ag := cleanedGood.Assess()[quality.Accuracy]
	ab := cleanedBad.Assess()[quality.Accuracy]
	if ag <= ab {
		t.Fatalf("outliers-first (%v) should beat smoothing-first (%v)", ag, ab)
	}
}

func TestPlannerSelectsNeededStages(t *testing.T) {
	ds := dirtyDataset(4)
	stages := Plan(ds.Assess(), DefaultTargets())
	names := map[string]bool{}
	for _, s := range stages {
		names[s.Name()] = true
	}
	// The dirty dataset violates redundancy, consistency, precision, and
	// completeness, so all four families should be planned.
	for _, want := range []string{"deduplicate", "outlier-removal", "kalman-smoothing", "interpolation-impute"} {
		if !names[want] {
			t.Fatalf("planner missed %q (got %v)", want, names)
		}
	}
	// A clean dataset needs nothing.
	clean := &Dataset{
		Region:           ds.Region,
		ExpectedInterval: 1,
		MaxSpeed:         10,
	}
	for id, tr := range ds.Truth {
		clean.Trajectories = append(clean.Trajectories, tr.Clone())
		_ = id
	}
	if got := Plan(clean.Assess(), DefaultTargets()); len(got) != 0 {
		var names []string
		for _, s := range got {
			names = append(names, s.Name())
		}
		t.Fatalf("clean data planned stages: %v", names)
	}
}

func TestPlanAndRunEndToEnd(t *testing.T) {
	ds := dirtyDataset(5)
	cleaned, stages, reports := PlanAndRun(ds, DefaultTargets())
	if len(stages) == 0 || len(reports) != len(stages) {
		t.Fatalf("stages %d reports %d", len(stages), len(reports))
	}
	if cleaned.Assess()[quality.Accuracy] <= ds.Assess()[quality.Accuracy] {
		t.Fatal("planned pipeline did not improve accuracy")
	}
}

func TestPredictionRepairAndTimestampStages(t *testing.T) {
	ds := dirtyDataset(6)
	// Corrupt some timestamps.
	ds.Trajectories[0].Points[10].T += 500
	p := NewPipeline(
		TimestampRepairStage{MinGap: 0, MaxGap: 10},
		PredictionRepairStage{MeasNoise: 6, Threshold: 6},
	)
	cleaned, _ := p.Run(ds)
	// Timestamps now satisfy the gap constraints.
	for _, tr := range cleaned.Trajectories {
		for i := 1; i < tr.Len(); i++ {
			gap := tr.Points[i].T - tr.Points[i-1].T
			if gap < -1e-9 || gap > 10+1e-9 {
				t.Fatalf("gap %v outside [0, 10]", gap)
			}
		}
	}
	if cleaned.Assess()[quality.Accuracy] <= ds.Assess()[quality.Accuracy] {
		t.Fatal("prediction repair did not improve accuracy")
	}
}

func TestRouteRecoverStage(t *testing.T) {
	g := roadnet.GridCity(roadnet.GridCityOptions{NX: 8, NY: 8, Spacing: 120, Seed: 7})
	trips := simulate.TripsWithRoutes(g, simulate.TripOptions{NumObjects: 2, MinHops: 8, Speed: 12, SampleInterval: 2, Seed: 8})
	ds := &Dataset{
		Truth:    map[string]*trajectory.Trajectory{},
		Region:   g.Bounds(),
		MaxSpeed: 20,
	}
	for _, trip := range trips {
		ds.Truth[trip.Truth.ID] = trip.Truth
		noisy := simulate.AddGaussianNoise(trip.Truth.Thin(5), 10, 9)
		ds.Trajectories = append(ds.Trajectories, noisy)
	}
	st := RouteRecoverStage{Graph: g, Snapper: roadnet.NewSnapper(g, 100)}
	before := ds.Assess()[quality.Accuracy]
	p := NewPipeline(st)
	cleaned, _ := p.Run(ds)
	if after := cleaned.Assess()[quality.Accuracy]; after <= before {
		t.Fatalf("route recovery: accuracy %v -> %v", before, after)
	}
	// Nil graph is a no-op.
	NewPipeline(RouteRecoverStage{}).Run(ds)
}

func TestThematicRepairStage(t *testing.T) {
	ds := dirtyDataset(7)
	before, beforeRd := ds.AssessParts()
	_ = before
	p := NewPipeline(ThematicRepairStage{})
	cleaned, _ := p.Run(ds)
	_, afterRd := cleaned.AssessParts()
	if afterRd[quality.Accuracy] <= beforeRd[quality.Accuracy] {
		t.Fatalf("thematic repair: readings accuracy %v -> %v",
			beforeRd[quality.Accuracy], afterRd[quality.Accuracy])
	}
	// Repair preserves volume (unlike removal).
	if afterRd[quality.DataVolume] != beforeRd[quality.DataVolume] {
		t.Fatal("repair should not change reading count")
	}
}

func TestSmoothReadingsStage(t *testing.T) {
	ds := dirtyDataset(8)
	_, beforeRd := ds.AssessParts()
	cleaned, _ := NewPipeline(SmoothReadingsStage{Window: 2}).Run(ds)
	_, afterRd := cleaned.AssessParts()
	if afterRd[quality.PrecisionError] >= beforeRd[quality.PrecisionError] {
		t.Fatalf("readings smoothing: precision %v -> %v",
			beforeRd[quality.PrecisionError], afterRd[quality.PrecisionError])
	}
}

func TestTaxonomyCoverage(t *testing.T) {
	entries := Taxonomy()
	if len(entries) < 40 {
		t.Fatalf("taxonomy entries = %d", len(entries))
	}
	// Every §2.2 task family appears.
	for _, family := range []string{
		"location refinement", "uncertainty elimination", "outlier removal",
		"fault correction", "data integration", "data reduction",
		"querying", "analysis", "decision-making",
	} {
		found := false
		for _, e := range entries {
			if strings.HasPrefix(e.Task, family) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("taxonomy missing family %q", family)
		}
	}
	fig := RenderFigure2()
	for _, layer := range []string{"[localization layer]", "[pre-processing layer]", "[business layer]", "[middleware layer]"} {
		if !strings.Contains(fig, layer) {
			t.Fatalf("figure missing %q", layer)
		}
	}
}

func TestTaskString(t *testing.T) {
	if OutlierRemoval.String() != "outlier removal" {
		t.Fatal("task name")
	}
	if !strings.Contains(Task(99).String(), "task(") {
		t.Fatal("unknown task")
	}
}

func TestPlanAndRunIterativeClosesInducedDeficits(t *testing.T) {
	// Dense outliers: removing them drops completeness below target,
	// which only a second planning round can see and repair.
	region := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1000, 1000)}
	ds := &Dataset{
		Truth:            map[string]*trajectory.Trajectory{},
		Region:           region,
		ExpectedInterval: 1,
		MaxSpeed:         10,
	}
	truth := simulate.RandomWalk("v0", region, 600, 2, 1, 50)
	ds.Truth[truth.ID] = truth
	dirty := simulate.AddGaussianNoise(truth, 3, 51)
	dirty, _ = simulate.InjectOutliers(dirty, 0.2, 150, 52)
	ds.Trajectories = append(ds.Trajectories, dirty)

	targets := DefaultTargets()
	_, oneStages, _ := PlanAndRun(ds, targets)
	iterDS, iterStages, _ := PlanAndRunIterative(ds, targets, 3)
	if len(iterStages) < len(oneStages) {
		t.Fatalf("iterative planned fewer stages: %d vs %d", len(iterStages), len(oneStages))
	}
	// The iterative run must end with completeness at or above the
	// single-pass run (the induced deficit is repaired).
	single, _, _ := PlanAndRun(ds, targets)
	if iterDS.Assess()[quality.Completeness] < single.Assess()[quality.Completeness]-1e-9 {
		t.Fatalf("iterative completeness %v < single-pass %v",
			iterDS.Assess()[quality.Completeness], single.Assess()[quality.Completeness])
	}
	// Termination: stages are never repeated.
	seen := map[string]int{}
	for _, s := range iterStages {
		seen[s.Name()]++
		if seen[s.Name()] > 1 {
			t.Fatalf("stage %q applied twice", s.Name())
		}
	}
}

func TestPlanAndRunIterativeCleanDataNoops(t *testing.T) {
	region := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1000, 1000)}
	truth := simulate.RandomWalk("v0", region, 400, 2, 1, 60)
	ds := &Dataset{
		Trajectories:     []*trajectory.Trajectory{truth},
		Region:           region,
		ExpectedInterval: 1,
		MaxSpeed:         10,
	}
	_, stages, reports := PlanAndRunIterative(ds, DefaultTargets(), 3)
	if len(stages) != 0 || len(reports) != 0 {
		t.Fatalf("clean data planned %d stages", len(stages))
	}
}
