package core

import (
	"context"
	"fmt"
	"math"
	"sync"

	"sidq/internal/faults"
	"sidq/internal/geo"
	"sidq/internal/integrate"
	"sidq/internal/outlier"
	"sidq/internal/refine"
	"sidq/internal/trajectory"
	"sidq/internal/uncertain"
)

// Task identifies a §2.2 quality-management task family.
type Task int

// The task families of the paper's pre-processing and localization
// layers.
const (
	LocationRefinement Task = iota
	UncertaintyElimination
	OutlierRemoval
	FaultCorrection
	DataIntegration
	DataReduction
)

var taskNames = map[Task]string{
	LocationRefinement:     "location refinement",
	UncertaintyElimination: "uncertainty elimination",
	OutlierRemoval:         "outlier removal",
	FaultCorrection:        "fault correction",
	DataIntegration:        "data integration",
	DataReduction:          "data reduction",
}

// String implements fmt.Stringer.
func (t Task) String() string {
	if s, ok := taskNames[t]; ok {
		return s
	}
	return fmt.Sprintf("task(%d)", int(t))
}

// Stage is one cleaning step in a pipeline.
type Stage interface {
	// Name is a short human-readable identifier.
	Name() string
	// Task is the taxonomy family the stage implements.
	Task() Task
	// Apply transforms the dataset in place (the pipeline clones first).
	Apply(ds *Dataset)
}

// OutlierRemovalStage drops trajectory points flagged by both the
// constraint-based and statistics-based detectors being consulted in
// union, and readings flagged by the temporal detector.
type OutlierRemovalStage struct {
	MaxSpeed float64 // physical speed bound; 0 uses the dataset's
}

// Name implements Stage.
func (s OutlierRemovalStage) Name() string { return "outlier-removal" }

// Task implements Stage.
func (s OutlierRemovalStage) Task() Task { return OutlierRemoval }

// Traits implements TraitedStage: trajectory-local, replace-only, and
// columnar — the detectors run as batch kernels over flat columns.
func (s OutlierRemovalStage) Traits() StageTraits { return columnarDataParallel }

// Apply implements Stage.
func (s OutlierRemovalStage) Apply(ds *Dataset) {
	_ = s.ApplyContext(context.Background(), ds)
}

// ApplyContext implements FallibleStage by driving the same columnar
// path the runner dispatches to, so direct callers and
// pipeline-managed runs share one implementation.
func (s OutlierRemovalStage) ApplyContext(ctx context.Context, ds *Dataset) error {
	return applyColumnarStage(ctx, s, ds)
}

// orFlags is the per-trajectory flag scratch of the columnar outlier
// stage, pooled so shard workers reuse buffers without sharing them.
type orFlags struct{ speed, stat []bool }

var orFlagsPool = sync.Pool{New: func() any { return new(orFlags) }}

// TransformColumns implements ColumnarStage: the speed-gate and the
// statistical scan run over the flat columns with pooled flag buffers,
// their union is compacted into dst. Flags and removal are bit-for-bit
// the AoS detectors' results (pinned by the columnar property tests and
// the pipeline goldens).
func (s OutlierRemovalStage) TransformColumns(dst, src *trajectory.Columns, ds *Dataset) {
	maxSpeed := s.MaxSpeed
	if maxSpeed <= 0 {
		maxSpeed = ds.MaxSpeed
	}
	scr := orFlagsPool.Get().(*orFlags)
	defer orFlagsPool.Put(scr)
	scr.speed = outlier.SpeedConstraintCols(src, maxSpeed, scr.speed)
	scr.stat = outlier.StatisticalCols(src, outlier.StatisticalOptions{}, scr.stat)
	for j := range scr.speed {
		scr.speed[j] = scr.speed[j] || scr.stat[j]
	}
	outlier.RemoveCols(dst, src, scr.speed)
}

// FinishColumns implements ColumnarStage: the readings pass, unchanged
// from the AoS form.
func (s OutlierRemovalStage) FinishColumns(ctx context.Context, ds *Dataset) error {
	if len(ds.Readings) > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		flags := outlier.Temporal(ds.Readings, outlier.TemporalOptions{})
		ds.Readings = outlier.RemoveReadings(ds.Readings, flags)
	}
	return nil
}

// SmoothingStage applies RTS Kalman smoothing to every trajectory.
type SmoothingStage struct {
	ProcessNoise float64 // default 1
	MeasNoise    float64 // default: the measured precision error
}

// Name implements Stage.
func (s SmoothingStage) Name() string { return "kalman-smoothing" }

// Task implements Stage.
func (s SmoothingStage) Task() Task { return UncertaintyElimination }

// Traits implements TraitedStage: trajectory-local and replace-only.
func (s SmoothingStage) Traits() StageTraits { return dataParallel }

// Apply implements Stage.
func (s SmoothingStage) Apply(ds *Dataset) {
	_ = s.ApplyContext(context.Background(), ds)
}

// ApplyContext implements FallibleStage.
func (s SmoothingStage) ApplyContext(ctx context.Context, ds *Dataset) error {
	q := s.ProcessNoise
	if q <= 0 {
		q = 1
	}
	for i, tr := range ds.Trajectories {
		if err := ctx.Err(); err != nil {
			return err
		}
		r := s.MeasNoise
		if r <= 0 {
			// Estimate the noise level from the data itself.
			a := quality2Precision(tr)
			if a <= 0 {
				a = 5
			}
			r = a
		}
		ds.Trajectories[i] = refine.KalmanSmoothTrajectory(tr, q, r)
	}
	return nil
}

// quality2Precision estimates a trajectory's noise via local roughness
// (the same estimator package quality uses, inlined to avoid exposing
// it publicly there).
func quality2Precision(tr *trajectory.Trajectory) float64 {
	if tr.Len() < 3 {
		return 0
	}
	var sum float64
	var n int
	for i := 1; i < tr.Len()-1; i++ {
		d := trajectory.SED(tr.Points[i-1], tr.Points[i+1], tr.Points[i])
		sum += d * d
		n++
	}
	return math.Sqrt(sum/float64(n)) / math.Sqrt(1.5)
}

// PredictionRepairStage repairs (rather than drops) gross trajectory
// outliers with the Kalman prediction-based detector.
type PredictionRepairStage struct {
	MeasNoise float64 // default 5
	Threshold float64 // default 5
}

// Name implements Stage.
func (s PredictionRepairStage) Name() string { return "prediction-repair" }

// Task implements Stage.
func (s PredictionRepairStage) Task() Task { return OutlierRemoval }

// Traits implements TraitedStage: trajectory-local and replace-only.
func (s PredictionRepairStage) Traits() StageTraits { return dataParallel }

// Apply implements Stage.
func (s PredictionRepairStage) Apply(ds *Dataset) {
	_ = s.ApplyContext(context.Background(), ds)
}

// ApplyContext implements FallibleStage.
func (s PredictionRepairStage) ApplyContext(ctx context.Context, ds *Dataset) error {
	for i, tr := range ds.Trajectories {
		if err := ctx.Err(); err != nil {
			return err
		}
		repaired, _ := outlier.Prediction(tr, outlier.PredictionOptions{
			MeasNoise: s.MeasNoise,
			Threshold: s.Threshold,
			Repair:    true,
		})
		ds.Trajectories[i] = repaired
	}
	return nil
}

// TimestampRepairStage repairs per-trajectory timestamp sequences to
// satisfy gap constraints.
type TimestampRepairStage struct {
	MinGap, MaxGap float64
}

// Name implements Stage.
func (s TimestampRepairStage) Name() string { return "timestamp-repair" }

// Task implements Stage.
func (s TimestampRepairStage) Task() Task { return FaultCorrection }

// Traits implements TraitedStage: trajectory-local and replace-only.
func (s TimestampRepairStage) Traits() StageTraits { return dataParallel }

// Apply implements Stage.
func (s TimestampRepairStage) Apply(ds *Dataset) {
	_ = s.ApplyContext(context.Background(), ds)
}

// ApplyContext implements FallibleStage. Unrepairable trajectories keep
// their raw timestamps and are counted in the PartialError. Repairs
// replace the trajectory rather than editing its points in place, so
// the stage is safe on copy-on-write clones.
func (s TimestampRepairStage) ApplyContext(ctx context.Context, ds *Dataset) error {
	failed := 0
	var last error
	for i, tr := range ds.Trajectories {
		if err := ctx.Err(); err != nil {
			return err
		}
		ts := make([]float64, tr.Len())
		for j, p := range tr.Points {
			ts[j] = p.T
		}
		repaired, err := faults.RepairTimestamps(ts, s.MinGap, s.MaxGap)
		if err != nil {
			failed++
			last = err
			continue
		}
		out := tr.Clone()
		for j := range out.Points {
			out.Points[j].T = repaired[j]
		}
		ds.Trajectories[i] = out
	}
	if failed > 0 {
		return &PartialError{Stage: s.Name(), Failed: failed, Total: len(ds.Trajectories), Last: last}
	}
	return nil
}

// DeduplicateStage removes exact duplicate trajectory points and
// merges redundant readings.
type DeduplicateStage struct {
	CellSize   float64 // reading dedup cell (default 1 m)
	TimeBucket float64 // reading dedup bucket (default 1 s)
}

// Name implements Stage.
func (s DeduplicateStage) Name() string { return "deduplicate" }

// Task implements Stage.
func (s DeduplicateStage) Task() Task { return DataIntegration }

// Traits implements TraitedStage: trajectory-local, replace-only, and
// columnar — exact-duplicate removal runs as a flat kernel.
func (s DeduplicateStage) Traits() StageTraits { return columnarDataParallel }

// Apply implements Stage.
func (s DeduplicateStage) Apply(ds *Dataset) {
	_ = s.ApplyContext(context.Background(), ds)
}

// ApplyContext implements FallibleStage by driving the same columnar
// path the runner dispatches to, so direct callers and
// pipeline-managed runs share one implementation.
func (s DeduplicateStage) ApplyContext(ctx context.Context, ds *Dataset) error {
	return applyColumnarStage(ctx, s, ds)
}

// TransformColumns implements ColumnarStage: first-occurrence exact
// dedup over the flat columns, with map[Point]bool float semantics
// (NaN always kept, +0 == -0) so output matches the pre-columnar AoS
// implementation bit for bit.
func (s DeduplicateStage) TransformColumns(dst, src *trajectory.Columns, ds *Dataset) {
	trajectory.DeduplicateCols(dst, src)
}

// FinishColumns implements ColumnarStage: the readings merge pass,
// unchanged from the AoS form.
func (s DeduplicateStage) FinishColumns(ctx context.Context, ds *Dataset) error {
	if len(ds.Readings) > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		ds.Readings = integrate.Deduplicate(ds.Readings, s.CellSize, s.TimeBucket)
	}
	return nil
}

// ImputeStage resamples each trajectory at the dataset's expected
// interval, filling gaps by interpolation (the simplest inference-based
// completeness repair; map matching is available via RouteRecoverStage
// when a road network exists).
type ImputeStage struct {
	Interval float64 // default: dataset ExpectedInterval
}

// Name implements Stage.
func (s ImputeStage) Name() string { return "interpolation-impute" }

// Task implements Stage.
func (s ImputeStage) Task() Task { return UncertaintyElimination }

// Traits implements TraitedStage: trajectory-local and replace-only.
func (s ImputeStage) Traits() StageTraits { return dataParallel }

// Apply implements Stage.
func (s ImputeStage) Apply(ds *Dataset) {
	_ = s.ApplyContext(context.Background(), ds)
}

// ApplyContext implements FallibleStage.
func (s ImputeStage) ApplyContext(ctx context.Context, ds *Dataset) error {
	dt := s.Interval
	if dt <= 0 {
		dt = ds.ExpectedInterval
	}
	if dt <= 0 {
		return nil
	}
	for i, tr := range ds.Trajectories {
		if err := ctx.Err(); err != nil {
			return err
		}
		if rs, err := tr.Resample(dt); err == nil {
			ds.Trajectories[i] = rs
		}
	}
	return nil
}

// ThematicRepairStage detects STID value outliers temporally and
// repairs them by neighborhood consensus instead of dropping them.
type ThematicRepairStage struct {
	SpaceSigma, TimeSigma float64
}

// Name implements Stage.
func (s ThematicRepairStage) Name() string { return "thematic-repair" }

// Task implements Stage.
func (s ThematicRepairStage) Task() Task { return FaultCorrection }

// Traits implements TraitedStage: trajectory-local and replace-only.
func (s ThematicRepairStage) Traits() StageTraits { return dataParallel }

// Apply implements Stage.
func (s ThematicRepairStage) Apply(ds *Dataset) {
	_ = s.ApplyContext(context.Background(), ds)
}

// ApplyContext implements FallibleStage.
func (s ThematicRepairStage) ApplyContext(ctx context.Context, ds *Dataset) error {
	if len(ds.Readings) == 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	flags := outlier.Temporal(ds.Readings, outlier.TemporalOptions{})
	ss := s.SpaceSigma
	if ss <= 0 {
		ss = 200
	}
	ts := s.TimeSigma
	if ts <= 0 {
		ts = 600
	}
	ds.Readings, _ = faults.RepairThematic(ds.Readings, flags, ss, ts)
	return nil
}

// SmoothReadingsStage is referenced by the planner when precision is
// the only deficit on the readings side; it applies a per-sensor
// moving-median.
type SmoothReadingsStage struct {
	Window int // samples each side (default 2)
}

// Name implements Stage.
func (s SmoothReadingsStage) Name() string { return "readings-smoothing" }

// Task implements Stage.
func (s SmoothReadingsStage) Task() Task { return UncertaintyElimination }

// Traits implements TraitedStage: trajectory-local and replace-only.
func (s SmoothReadingsStage) Traits() StageTraits { return dataParallel }

// Apply implements Stage.
func (s SmoothReadingsStage) Apply(ds *Dataset) {
	_ = s.ApplyContext(context.Background(), ds)
}

// ApplyContext implements FallibleStage.
func (s SmoothReadingsStage) ApplyContext(ctx context.Context, ds *Dataset) error {
	w := s.Window
	if w <= 0 {
		w = 2
	}
	series := groupReadingIdx(ds)
	for _, idxs := range series {
		if err := ctx.Err(); err != nil {
			return err
		}
		vals := make([]float64, len(idxs))
		for i, idx := range idxs {
			vals[i] = ds.Readings[idx].Value
		}
		for i, idx := range idxs {
			lo, hi := i-w, i+w
			if lo < 0 {
				lo = 0
			}
			if hi >= len(vals) {
				hi = len(vals) - 1
			}
			window := append([]float64(nil), vals[lo:hi+1]...)
			ds.Readings[idx].Value = medianOf(window)
		}
	}
	return nil
}

func groupReadingIdx(ds *Dataset) map[string][]int {
	out := map[string][]int{}
	for i, r := range ds.Readings {
		out[r.SensorID] = append(out[r.SensorID], i)
	}
	for _, idxs := range out {
		// insertion sort by time (groups are small)
		for i := 1; i < len(idxs); i++ {
			for j := i; j > 0 && ds.Readings[idxs[j]].T < ds.Readings[idxs[j-1]].T; j-- {
				idxs[j], idxs[j-1] = idxs[j-1], idxs[j]
			}
		}
	}
	return out
}

func medianOf(xs []float64) float64 {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
	n := len(xs)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// CalibrationStage pulls trajectory points toward reference anchors.
type CalibrationStage struct {
	Anchors []geo.Point
	Radius  float64
	Alpha   float64
}

// Name implements Stage.
func (s CalibrationStage) Name() string { return "anchor-calibration" }

// Task implements Stage.
func (s CalibrationStage) Task() Task { return UncertaintyElimination }

// Traits implements TraitedStage: trajectory-local and replace-only.
func (s CalibrationStage) Traits() StageTraits { return dataParallel }

// Apply implements Stage.
func (s CalibrationStage) Apply(ds *Dataset) {
	_ = s.ApplyContext(context.Background(), ds)
}

// ApplyContext implements FallibleStage.
func (s CalibrationStage) ApplyContext(ctx context.Context, ds *Dataset) error {
	if len(s.Anchors) == 0 {
		return nil
	}
	for i, tr := range ds.Trajectories {
		if err := ctx.Err(); err != nil {
			return err
		}
		ds.Trajectories[i] = uncertain.CalibrateToAnchors(tr, s.Anchors, s.Radius, s.Alpha)
	}
	return nil
}
