package core

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"sidq/internal/geo"
	"sidq/internal/simulate"
	"sidq/internal/trajectory"
)

// wideDataset is dirtyDataset scaled out to many trajectories so shard
// boundaries land in interesting places.
func wideDataset(seed int64, n int) *Dataset {
	ds := dirtyDataset(seed)
	region := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1000, 1000)}
	for i := 3; i < n; i++ {
		truth := simulate.RandomWalk(fmt.Sprintf("w%d", i), region, 200, 2, 1, seed+int64(100+i))
		ds.Truth[truth.ID] = truth
		dirty := simulate.AddGaussianNoise(truth, 6, seed+int64(200+i))
		dirty, _ = simulate.InjectOutliers(dirty, 0.03, 120, seed+int64(300+i))
		ds.Trajectories = append(ds.Trajectories, dirty)
	}
	return ds
}

// requireSameData asserts the data payloads of two datasets are
// deeply (bit-for-bit) identical.
func requireSameData(t *testing.T, label string, a, b *Dataset) {
	t.Helper()
	if !reflect.DeepEqual(a.Trajectories, b.Trajectories) {
		t.Fatalf("%s: trajectories differ", label)
	}
	if !reflect.DeepEqual(a.Readings, b.Readings) {
		t.Fatalf("%s: readings differ", label)
	}
}

// TestParallelRunnerByteIdentical is the tentpole guarantee: for every
// pipeline shape the experiments use, the parallel runner's output is
// byte-identical to the serial runner's at 1, 4, and NumCPU workers.
func TestParallelRunnerByteIdentical(t *testing.T) {
	full := []Stage{
		DeduplicateStage{},
		OutlierRemovalStage{},
		SmoothingStage{},
		ImputeStage{},
	}
	pipelines := map[string][]Stage{
		"full":          full,
		"no-dedup":      full[1:],
		"reversed":      {full[3], full[2], full[1], full[0]},
		"repairs":       {PredictionRepairStage{}, TimestampRepairStage{MinGap: 0.1, MaxGap: 10}},
		"readings-side": {ThematicRepairStage{}, SmoothReadingsStage{}},
		"mixed":         {DeduplicateStage{}, ThematicRepairStage{}, SmoothingStage{}, SmoothReadingsStage{}},
	}
	workerCounts := []int{1, 4, runtime.NumCPU()}
	for name, stages := range pipelines {
		serialOut, serialReports, err := NewPipeline(stages...).RunContext(
			context.Background(), &Runner{Policy: RollbackStage}, wideDataset(7, 9))
		if err != nil {
			t.Fatalf("%s: serial run failed: %v", name, err)
		}
		for _, w := range workerCounts {
			r := &Runner{Policy: RollbackStage, Workers: w}
			parOut, parReports, err := NewPipeline(stages...).RunContext(
				context.Background(), r, wideDataset(7, 9))
			if err != nil {
				t.Fatalf("%s/workers=%d: run failed: %v", name, w, err)
			}
			requireSameData(t, fmt.Sprintf("%s/workers=%d", name, w), serialOut, parOut)
			if len(parReports) != len(serialReports) {
				t.Fatalf("%s/workers=%d: %d reports vs %d", name, w, len(parReports), len(serialReports))
			}
			for i := range serialReports {
				sr, pr := serialReports[i], parReports[i]
				if !reflect.DeepEqual(sr.Before, pr.Before) || !reflect.DeepEqual(sr.After, pr.After) {
					t.Fatalf("%s/workers=%d stage %s: assessments diverge", name, w, sr.Stage)
				}
				if sr.Skipped != pr.Skipped || sr.RolledBack != pr.RolledBack {
					t.Fatalf("%s/workers=%d stage %s: outcome diverges (skip %v/%v rollback %v/%v)",
						name, w, sr.Stage, sr.Skipped, pr.Skipped, sr.RolledBack, pr.RolledBack)
				}
			}
		}
	}
}

func TestAssessNMatchesAssess(t *testing.T) {
	ds := wideDataset(3, 11)
	want := ds.Assess()
	for _, w := range []int{1, 2, 3, 8, runtime.NumCPU()} {
		if got := ds.AssessN(w); !reflect.DeepEqual(want, got) {
			t.Fatalf("AssessN(%d) diverges from Assess()", w)
		}
	}
}

func TestShardDataset(t *testing.T) {
	ds := wideDataset(5, 10)
	for _, k := range []int{2, 3, 4, 7, 10, 25} {
		shards := shardDataset(ds, k)
		wantShards := k
		if wantShards > len(ds.Trajectories) {
			wantShards = len(ds.Trajectories)
		}
		if len(shards) != wantShards {
			t.Fatalf("k=%d: %d shards", k, len(shards))
		}
		var ids []string
		for i, s := range shards {
			if i == 0 && len(s.Readings) != len(ds.Readings) {
				t.Fatalf("k=%d: shard 0 lost readings", k)
			}
			if i > 0 && s.Readings != nil {
				t.Fatalf("k=%d: shard %d carries readings", k, i)
			}
			if s.Region != ds.Region || s.MaxSpeed != ds.MaxSpeed {
				t.Fatalf("k=%d: shard %d lost assessment context", k, i)
			}
			for _, tr := range s.Trajectories {
				ids = append(ids, tr.ID)
			}
		}
		if len(ids) != len(ds.Trajectories) {
			t.Fatalf("k=%d: %d trajectories across shards, want %d", k, len(ids), len(ds.Trajectories))
		}
		for i, tr := range ds.Trajectories {
			if ids[i] != tr.ID {
				t.Fatalf("k=%d: order not preserved at %d: %s != %s", k, i, ids[i], tr.ID)
			}
		}
		// Balance: sizes differ by at most one.
		min, max := len(ds.Trajectories), 0
		for _, s := range shards {
			if len(s.Trajectories) < min {
				min = len(s.Trajectories)
			}
			if len(s.Trajectories) > max {
				max = len(s.Trajectories)
			}
		}
		if max-min > 1 {
			t.Fatalf("k=%d: unbalanced shards (%d..%d)", k, min, max)
		}
	}
}

// partialShardStage fails trajectories whose ID carries a marker and
// replaces the rest, reporting a PartialError — the shape the merged
// partial accounting must reproduce exactly.
type partialShardStage struct{}

func (partialShardStage) Name() string        { return "partial-shard" }
func (partialShardStage) Task() Task          { return FaultCorrection }
func (partialShardStage) Traits() StageTraits { return dataParallel }
func (s partialShardStage) Apply(ds *Dataset) { _ = s.ApplyContext(context.Background(), ds) }
func (s partialShardStage) ApplyContext(ctx context.Context, ds *Dataset) error {
	failed := 0
	for i, tr := range ds.Trajectories {
		if len(tr.ID) > 0 && tr.ID[0] == 'x' {
			failed++
			continue
		}
		out := tr.Clone()
		for j := range out.Points {
			out.Points[j].Pos.X += 1
		}
		ds.Trajectories[i] = out
	}
	if failed > 0 {
		return &PartialError{Stage: s.Name(), Failed: failed, Total: len(ds.Trajectories), Last: errors.New("marked bad")}
	}
	return nil
}

func TestParallelRunnerMergesPartialErrors(t *testing.T) {
	ds := wideDataset(9, 8)
	// Mark two trajectories in different prospective shards as failing.
	ds.Trajectories[1] = &trajectory.Trajectory{ID: "x1", Points: ds.Trajectories[1].Points}
	ds.Trajectories[6] = &trajectory.Trajectory{ID: "x6", Points: ds.Trajectories[6].Points}

	p := NewPipeline(partialShardStage{})
	serialOut, serialReports, err := p.RunContext(context.Background(), &Runner{Policy: SkipStage}, ds)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 8} {
		parOut, parReports, err := p.RunContext(context.Background(), &Runner{Policy: SkipStage, Workers: w}, ds)
		if err != nil {
			t.Fatal(err)
		}
		requireSameData(t, fmt.Sprintf("workers=%d", w), serialOut, parOut)
		sr, pr := serialReports[0], parReports[0]
		if !isPartial(pr.Err) {
			t.Fatalf("workers=%d: partial error lost: %v", w, pr.Err)
		}
		if !reflect.DeepEqual(sr.Meta, pr.Meta) {
			t.Fatalf("workers=%d: partial accounting %v, want %v", w, pr.Meta, sr.Meta)
		}
	}
}

// alwaysFailStage is shardable but always errors.
type alwaysFailStage struct{}

func (alwaysFailStage) Name() string        { return "always-fail" }
func (alwaysFailStage) Task() Task          { return FaultCorrection }
func (alwaysFailStage) Traits() StageTraits { return dataParallel }
func (alwaysFailStage) Apply(ds *Dataset)   {}
func (alwaysFailStage) ApplyContext(ctx context.Context, ds *Dataset) error {
	return errors.New("nope")
}

func TestParallelRunnerSkipKeepsInputAndBoundsRetries(t *testing.T) {
	ds := wideDataset(11, 6)
	r := &Runner{
		Policy:  SkipStage,
		Workers: 4,
		Retry:   RetryPolicy{MaxAttempts: 3},
		Sleep:   func(time.Duration) {},
	}
	out, reports, err := NewPipeline(alwaysFailStage{}).RunContext(context.Background(), r, ds)
	if err != nil {
		t.Fatalf("skip policy must not surface the error: %v", err)
	}
	if !reports[0].Skipped {
		t.Fatal("stage not skipped")
	}
	if reports[0].Attempts > 3 {
		t.Fatalf("retries unbounded: %d", reports[0].Attempts)
	}
	requireSameData(t, "skipped stage", ds, out)
}

// scatterStage corrupts trajectories (replace-only) so the rollback
// guard must fire in the parallel path too.
type scatterStage struct{}

func (scatterStage) Name() string        { return "scatter" }
func (scatterStage) Task() Task          { return FaultCorrection }
func (scatterStage) Traits() StageTraits { return dataParallel }
func (s scatterStage) Apply(ds *Dataset) { _ = s.ApplyContext(context.Background(), ds) }
func (s scatterStage) ApplyContext(ctx context.Context, ds *Dataset) error {
	for i, tr := range ds.Trajectories {
		out := tr.Clone()
		for j := range out.Points {
			out.Points[j].Pos.X += float64(j%17) * 400
			out.Points[j].Pos.Y -= float64(j%13) * 400
		}
		ds.Trajectories[i] = out
	}
	return nil
}

func TestParallelRunnerRollbackGuard(t *testing.T) {
	ds := wideDataset(13, 6)
	r := &Runner{Policy: RollbackStage, Workers: 4}
	out, reports, err := NewPipeline(scatterStage{}).RunContext(context.Background(), r, ds)
	if err != nil {
		t.Fatal(err)
	}
	if !reports[0].RolledBack {
		t.Fatal("corrupting stage not rolled back under parallel execution")
	}
	requireSameData(t, "rolled-back stage", ds, out)
}

// panicOrBlockStage panics on the shard holding a marker trajectory and
// blocks on ctx everywhere else — proving that a panicking worker
// cancels its siblings instead of deadlocking the stage.
type panicOrBlockStage struct{ marker string }

func (panicOrBlockStage) Name() string        { return "panic-or-block" }
func (panicOrBlockStage) Task() Task          { return FaultCorrection }
func (panicOrBlockStage) Traits() StageTraits { return dataParallel }
func (s panicOrBlockStage) Apply(ds *Dataset) { _ = s.ApplyContext(context.Background(), ds) }
func (s panicOrBlockStage) ApplyContext(ctx context.Context, ds *Dataset) error {
	for _, tr := range ds.Trajectories {
		if tr.ID == s.marker {
			panic("marker shard exploded")
		}
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(5 * time.Second):
		return errors.New("sibling cancellation never arrived")
	}
}

func TestParallelRunnerPanicCancelsSiblings(t *testing.T) {
	ds := wideDataset(17, 8)
	marker := ds.Trajectories[0].ID
	r := &Runner{Policy: SkipStage, Workers: 4}
	start := time.Now()
	out, reports, err := NewPipeline(panicOrBlockStage{marker: marker}).RunContext(context.Background(), r, ds)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("stage took %v; sibling cancellation is broken", elapsed)
	}
	if !reports[0].Skipped {
		t.Fatal("panicking stage not skipped")
	}
	if reports[0].Err == nil || errors.Is(reports[0].Err, context.Canceled) {
		t.Fatalf("report should carry the panic, not the cancellation echo: %v", reports[0].Err)
	}
	requireSameData(t, "panicked stage", ds, out)
}

func TestParallelRunnerFailFast(t *testing.T) {
	ds := wideDataset(19, 6)
	r := &Runner{Policy: FailFast, Workers: 4}
	_, reports, err := NewPipeline(alwaysFailStage{}).RunContext(context.Background(), r, ds)
	if err == nil {
		t.Fatal("fail-fast must surface the stage failure")
	}
	if len(reports) != 1 || reports[0].Skipped {
		t.Fatalf("unexpected reports under fail-fast: %+v", reports)
	}
}
