package core

// Observability wiring for the Runner. Everything here is nil-guarded:
// a runner with no Obs registry and no Trace sink pays only those nil
// checks, and they sit at stage granularity (a handful per pipeline
// run), never inside per-point loops — the zero-overhead contract
// documented in DESIGN.md and guarded by BenchmarkRunnerObsOverhead.

import (
	"fmt"
	"time"

	"sidq/internal/obs"
)

// TraceSink receives structured runner execution events. It is the
// obs.TraceSink contract re-exported so chaos scenarios and services
// can depend on core alone. Implementations must be safe for
// concurrent use when Workers > 1.
type TraceSink = obs.TraceSink

// TraceEvent is the event type delivered to a TraceSink.
type TraceEvent = obs.TraceEvent

// panicError marks an attempt that panicked and was recovered; the
// runner counts these separately from ordinary stage errors.
type panicError struct {
	stage string
	val   interface{}
}

// Error implements error (same text the runner historically produced).
func (e *panicError) Error() string { return fmt.Sprintf("stage %s panicked: %v", e.stage, e.val) }

// isPanicErr reports whether err records a recovered stage panic.
func isPanicErr(err error) bool {
	_, ok := err.(*panicError)
	return ok
}

// Runner metric families. Per-stage series carry a stage label built
// from the pipeline's stage names — a closed set, so cardinality stays
// bounded (see the cardinality rules in DESIGN.md).
const (
	mStageTotal     = "sidq_runner_stage_total"
	mStageLatency   = "sidq_runner_stage_latency_ns"
	mRetries        = "sidq_runner_retries_total"
	mPanics         = "sidq_runner_panics_total"
	mRollbacks      = "sidq_runner_rollbacks_total"
	mSkips          = "sidq_runner_skips_total"
	mShardQueueWait = "sidq_runner_shard_queue_wait_ns"
)

// InitRunnerMetrics pre-registers the runner's unlabeled metric
// families and help text in reg, so an exposition endpoint shows them
// (at zero) before the first pipeline runs. Labeled per-stage series
// appear as stages execute.
func InitRunnerMetrics(reg *obs.Registry) {
	reg.Help(mStageTotal, "Pipeline stage executions by stage and outcome.")
	reg.Help(mStageLatency, "Per-stage wall time across all attempts, in nanoseconds.")
	reg.Help(mRetries, "Stage attempts that failed and were retried.")
	reg.Help(mPanics, "Stage attempts that panicked and were recovered.")
	reg.Help(mRollbacks, "Stages rolled back by the quality-regression guard.")
	reg.Help(mSkips, "Stages skipped after exhausting retries.")
	reg.Help(mShardQueueWait, "Delay between shard creation and shard execution start, in nanoseconds.")
	reg.Counter(mRetries)
	reg.Counter(mPanics)
	reg.Counter(mRollbacks)
	reg.Counter(mSkips)
	reg.Histogram(mShardQueueWait)
}

// errText renders err for a trace event ("" for success).
func errText(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// observeStage records the completed stage into the trace sink and the
// metrics registry. Called once per stage (serial or sharded), with
// the final report.
func (r *Runner) observeStage(rep *StageReport) {
	if r.Trace != nil {
		r.Trace.Record(obs.TraceEvent{
			Name: rep.Stage,
			Kind: obs.KindStage,
			Dur:  rep.Duration,
			N:    rep.Attempts,
			Err:  errText(rep.Err),
		})
	}
	if r.Obs == nil {
		return
	}
	outcome := "ok"
	switch {
	case rep.RolledBack:
		outcome = "rolled_back"
		r.Obs.Counter(mRollbacks).Inc()
	case rep.Skipped:
		outcome = "skipped"
		r.Obs.Counter(mSkips).Inc()
	case rep.Err != nil && isPartial(rep.Err):
		outcome = "degraded"
	case rep.Err != nil:
		outcome = "failed"
	}
	r.Obs.Counter(fmt.Sprintf("%s{stage=%q,outcome=%q}", mStageTotal, rep.Stage, outcome)).Inc()
	r.Obs.Histogram(fmt.Sprintf("%s{stage=%q}", mStageLatency, rep.Stage)).Observe(rep.Duration.Nanoseconds())
}

// obsAttemptFailure records one failed attempt: a panic counter/event
// when the attempt panicked, and a retry counter/event when another
// attempt follows.
func (r *Runner) obsAttemptFailure(stage string, attempt int, err error, willRetry bool) {
	if isPanicErr(err) {
		if r.Trace != nil {
			r.Trace.Record(obs.TraceEvent{Name: stage, Kind: obs.KindPanic, N: attempt, Err: errText(err)})
		}
		if r.Obs != nil {
			r.Obs.Counter(mPanics).Inc()
		}
	}
	if !willRetry {
		return
	}
	if r.Trace != nil {
		r.Trace.Record(obs.TraceEvent{Name: stage, Kind: obs.KindRetry, N: attempt, Err: errText(err)})
	}
	if r.Obs != nil {
		r.Obs.Counter(mRetries).Inc()
	}
}

// obsSkip emits the skip decision (terminal stage failure).
func (r *Runner) obsSkip(stage string, attempts int, err error) {
	if r.Trace != nil {
		r.Trace.Record(obs.TraceEvent{Name: stage, Kind: obs.KindSkip, N: attempts, Err: errText(err)})
	}
}

// obsRollback emits the rollback decision (quality regression).
func (r *Runner) obsRollback(stage string) {
	if r.Trace != nil {
		r.Trace.Record(obs.TraceEvent{Name: stage, Kind: obs.KindRollback})
	}
}

// obsShard records one completed shard: its queue wait (delay between
// shard spawn and execution start) and a shard trace event.
func (r *Runner) obsShard(stage string, shard int, queueWait, dur time.Duration) {
	if r.Trace != nil {
		r.Trace.Record(obs.TraceEvent{Name: stage, Kind: obs.KindShard, N: shard, Dur: dur})
	}
	if r.Obs != nil {
		r.Obs.Histogram(mShardQueueWait).Observe(queueWait.Nanoseconds())
	}
}
