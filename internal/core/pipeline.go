package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"sidq/internal/quality"
	"sidq/internal/roadnet"
	"sidq/internal/uncertain"
)

// RouteRecoverStage map-matches trajectories to a road network and
// replaces them with the recovered network-constrained paths — the
// inference-based completeness/accuracy repair for sparse urban GPS.
type RouteRecoverStage struct {
	Graph   *roadnet.Graph
	Snapper *roadnet.Snapper
	Options uncertain.MatchOptions
}

// Name implements Stage.
func (s RouteRecoverStage) Name() string { return "route-recovery" }

// Task implements Stage.
func (s RouteRecoverStage) Task() Task { return UncertaintyElimination }

// Traits implements TraitedStage: each trajectory is map-matched
// independently and replaced by its recovered path.
func (s RouteRecoverStage) Traits() StageTraits { return dataParallel }

// Apply implements Stage.
func (s RouteRecoverStage) Apply(ds *Dataset) {
	_ = s.ApplyContext(context.Background(), ds)
}

// ApplyContext implements FallibleStage. Trajectories whose map-match
// fails keep their raw points; the failure count is surfaced as a
// PartialError instead of being swallowed.
func (s RouteRecoverStage) ApplyContext(ctx context.Context, ds *Dataset) error {
	if s.Graph == nil || s.Snapper == nil {
		return nil
	}
	// Prewarm the compiled query engine (CSR build + ALT tables) before
	// matching, so data-parallel shards share one ready engine instead
	// of serializing on its lazy first-use build.
	s.Graph.Engine()
	failed := 0
	var last error
	for i, tr := range ds.Trajectories {
		if err := ctx.Err(); err != nil {
			return err
		}
		res, err := uncertain.MapMatch(s.Graph, s.Snapper, tr, s.Options)
		if err != nil {
			failed++
			last = err
			continue
		}
		ds.Trajectories[i] = res.Recovered
	}
	if failed > 0 {
		return &PartialError{Stage: s.Name(), Failed: failed, Total: len(ds.Trajectories), Last: last}
	}
	return nil
}

// StageReport records the quality movement caused by one stage,
// together with the runner's execution record for it.
type StageReport struct {
	Stage  string
	Task   Task
	Before quality.Assessment
	After  quality.Assessment

	// Execution record (populated by the Runner).
	Err        error          // stage error (PartialError for degraded success)
	Attempts   int            // attempts consumed (1 = first try)
	Skipped    bool           // stage failed and its work was discarded
	RolledBack bool           // stage succeeded but regressed quality and was reverted
	Duration   time.Duration  // wall time across all attempts
	Meta       map[string]int // stage counters (e.g. partial-failure accounting)
}

// Pipeline is an ordered list of cleaning stages.
type Pipeline struct {
	Stages []Stage
}

// NewPipeline returns a pipeline over the given stages.
func NewPipeline(stages ...Stage) *Pipeline { return &Pipeline{Stages: stages} }

// Run clones the dataset, applies every stage in order, and returns the
// cleaned dataset together with per-stage before/after assessments.
// It executes on the default Runner: a panicking or failing stage is
// skipped (recorded in its report) instead of killing the run.
func (p *Pipeline) Run(ds *Dataset) (*Dataset, []StageReport) {
	out, reports, _ := DefaultRunner().Run(context.Background(), p, ds)
	return out, reports
}

// RunContext executes the pipeline on the given runner, exposing
// cancellation, deadlines, retries, and failure policies to callers
// that need them.
func (p *Pipeline) RunContext(ctx context.Context, r *Runner, ds *Dataset) (*Dataset, []StageReport, error) {
	if r == nil {
		r = DefaultRunner()
	}
	return r.Run(ctx, p, ds)
}

// RunParallel runs the pipeline like Run but executes shardable stages
// (and per-stage quality assessment) across the given number of workers
// (workers <= 0 selects runtime.NumCPU()). Output is identical to Run
// for every worker count; see ParallelRunner for the guarantees.
func (p *Pipeline) RunParallel(ds *Dataset, workers int) (*Dataset, []StageReport) {
	out, reports, _ := ParallelRunner(workers).Run(context.Background(), p, ds)
	return out, reports
}

// RenderReports formats stage reports as an aligned table of the
// dimensions that moved, annotated with the runner's execution record.
func RenderReports(reports []StageReport) string {
	var b strings.Builder
	for _, r := range reports {
		fmt.Fprintf(&b, "stage %-22s (%s)", r.Stage, r.Task)
		if r.Attempts > 1 {
			fmt.Fprintf(&b, " [attempts=%d]", r.Attempts)
		}
		switch {
		case r.Skipped:
			fmt.Fprintf(&b, " [skipped: %v]", r.Err)
		case r.RolledBack:
			b.WriteString(" [rolled back: quality regression]")
		case r.Err != nil:
			fmt.Fprintf(&b, " [degraded: %v]", r.Err)
		}
		b.WriteString("\n")
		for _, d := range quality.AllDimensions() {
			bv, okB := r.Before[d]
			av, okA := r.After[d]
			if !okB && !okA {
				continue
			}
			if okB && okA && bv == av {
				continue
			}
			fmt.Fprintf(&b, "  %-18s %12.4f -> %12.4f\n", d, bv, av)
		}
	}
	return b.String()
}
