package core

import (
	"fmt"
	"strings"

	"sidq/internal/quality"
	"sidq/internal/roadnet"
	"sidq/internal/uncertain"
)

// RouteRecoverStage map-matches trajectories to a road network and
// replaces them with the recovered network-constrained paths — the
// inference-based completeness/accuracy repair for sparse urban GPS.
type RouteRecoverStage struct {
	Graph   *roadnet.Graph
	Snapper *roadnet.Snapper
	Options uncertain.MatchOptions
}

// Name implements Stage.
func (s RouteRecoverStage) Name() string { return "route-recovery" }

// Task implements Stage.
func (s RouteRecoverStage) Task() Task { return UncertaintyElimination }

// Apply implements Stage.
func (s RouteRecoverStage) Apply(ds *Dataset) {
	if s.Graph == nil || s.Snapper == nil {
		return
	}
	for i, tr := range ds.Trajectories {
		res, err := uncertain.MapMatch(s.Graph, s.Snapper, tr, s.Options)
		if err != nil {
			continue
		}
		ds.Trajectories[i] = res.Recovered
	}
}

// StageReport records the quality movement caused by one stage.
type StageReport struct {
	Stage  string
	Task   Task
	Before quality.Assessment
	After  quality.Assessment
}

// Pipeline is an ordered list of cleaning stages.
type Pipeline struct {
	Stages []Stage
}

// NewPipeline returns a pipeline over the given stages.
func NewPipeline(stages ...Stage) *Pipeline { return &Pipeline{Stages: stages} }

// Run clones the dataset, applies every stage in order, and returns the
// cleaned dataset together with per-stage before/after assessments.
func (p *Pipeline) Run(ds *Dataset) (*Dataset, []StageReport) {
	cur := ds.Clone()
	reports := make([]StageReport, 0, len(p.Stages))
	before := cur.Assess()
	for _, st := range p.Stages {
		st.Apply(cur)
		after := cur.Assess()
		reports = append(reports, StageReport{
			Stage:  st.Name(),
			Task:   st.Task(),
			Before: before,
			After:  after,
		})
		before = after
	}
	return cur, reports
}

// RenderReports formats stage reports as an aligned table of the
// dimensions that moved.
func RenderReports(reports []StageReport) string {
	var b strings.Builder
	for _, r := range reports {
		fmt.Fprintf(&b, "stage %-22s (%s)\n", r.Stage, r.Task)
		for _, d := range quality.AllDimensions() {
			bv, okB := r.Before[d]
			av, okA := r.After[d]
			if !okB && !okA {
				continue
			}
			if okB && okA && bv == av {
				continue
			}
			fmt.Fprintf(&b, "  %-18s %12.4f -> %12.4f\n", d, bv, av)
		}
	}
	return b.String()
}
