package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"sidq/internal/geo"
	"sidq/internal/integrate"
	"sidq/internal/outlier"
	"sidq/internal/stid"
	"sidq/internal/trajectory"
)

// spikyDataset builds a dataset of noisy random walks with teleport
// spikes and duplicate timestamps, plus a few readings so the
// FinishColumns pass has work.
func spikyDataset(rng *rand.Rand, nTraj, nPts int) *Dataset {
	ds := &Dataset{MaxSpeed: 10, ExpectedInterval: 1, Now: float64(nPts)}
	for k := 0; k < nTraj; k++ {
		pts := make([]trajectory.Point, nPts)
		x, y, t := rng.Float64()*100, rng.Float64()*100, 0.0
		for i := range pts {
			if rng.Intn(15) == 0 {
				x += rng.NormFloat64() * 400
				y += rng.NormFloat64() * 400
			} else {
				x += rng.NormFloat64() * 3
				y += rng.NormFloat64() * 3
			}
			if rng.Intn(10) != 0 {
				t += 1 + rng.Float64()
			}
			pts[i] = trajectory.Point{T: t, Pos: geo.Pt(x, y)}
		}
		ds.Trajectories = append(ds.Trajectories, trajectory.New(fmt.Sprintf("d%d", k), pts))
	}
	for i := 0; i < 40; i++ {
		ds.Readings = append(ds.Readings, stid.Reading{
			SensorID: fmt.Sprintf("s%d", i%3),
			T:        float64(i),
			Pos:      geo.Pt(rng.Float64()*100, rng.Float64()*100),
			Value:    20 + rng.NormFloat64(),
		})
	}
	return ds
}

// aosOutlierRemoval is the stage's pre-columnar implementation, kept as
// the test reference: per-trajectory AoS detectors, merged flags,
// point-slice compaction, then the readings pass.
func aosOutlierRemoval(s OutlierRemovalStage, ds *Dataset) {
	maxSpeed := s.MaxSpeed
	if maxSpeed <= 0 {
		maxSpeed = ds.MaxSpeed
	}
	for i, tr := range ds.Trajectories {
		speedFlags := outlier.SpeedConstraint(tr, maxSpeed)
		statFlags := outlier.Statistical(tr, outlier.StatisticalOptions{})
		merged := make([]bool, tr.Len())
		for j := range merged {
			merged[j] = speedFlags[j] || statFlags[j]
		}
		ds.Trajectories[i] = outlier.Remove(tr, merged)
	}
	if len(ds.Readings) > 0 {
		flags := outlier.Temporal(ds.Readings, outlier.TemporalOptions{})
		ds.Readings = outlier.RemoveReadings(ds.Readings, flags)
	}
}

func sameTrajectories(t *testing.T, got, want []*trajectory.Trajectory) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("trajectory count %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID {
			t.Fatalf("trajectory %d: id %q want %q", i, got[i].ID, want[i].ID)
		}
		if got[i].Len() != want[i].Len() {
			t.Fatalf("trajectory %d: %d points, want %d", i, got[i].Len(), want[i].Len())
		}
		for j := range want[i].Points {
			a, b := got[i].Points[j], want[i].Points[j]
			if math.Float64bits(a.T) != math.Float64bits(b.T) ||
				math.Float64bits(a.Pos.X) != math.Float64bits(b.Pos.X) ||
				math.Float64bits(a.Pos.Y) != math.Float64bits(b.Pos.Y) {
				t.Fatalf("trajectory %d point %d diverged: %+v vs %+v", i, j, a, b)
			}
		}
	}
}

// TestOutlierRemovalColumnarMatchesAoS pins the columnar stage against
// the pre-columnar AoS implementation bit for bit, including the
// readings pass, across random dirty datasets and both entry points
// (direct ApplyContext and a pipeline run).
func TestOutlierRemovalColumnarMatchesAoS(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 25; trial++ {
		ds := spikyDataset(rng, 1+rng.Intn(5), rng.Intn(120))
		st := OutlierRemovalStage{}
		if trial%3 == 0 {
			st.MaxSpeed = 5
		}

		want := ds.Clone()
		aosOutlierRemoval(st, want)

		got := ds.Clone()
		if err := st.ApplyContext(context.Background(), got); err != nil {
			t.Fatalf("trial %d: ApplyContext: %v", trial, err)
		}
		sameTrajectories(t, got.Trajectories, want.Trajectories)
		if len(got.Readings) != len(want.Readings) {
			t.Fatalf("trial %d: %d readings, want %d", trial, len(got.Readings), len(want.Readings))
		}
		for i := range want.Readings {
			if got.Readings[i] != want.Readings[i] {
				t.Fatalf("trial %d: reading %d diverged", trial, i)
			}
		}
	}
}

// TestOutlierRemovalColumnarAcrossWorkers runs the columnar stage under
// the parallel runner at several worker counts and requires output
// identical to the serial path — the sharding contract must survive the
// columnar dispatch.
func TestOutlierRemovalColumnarAcrossWorkers(t *testing.T) {
	ds := spikyDataset(rand.New(rand.NewSource(72)), 9, 150)
	p := NewPipeline(OutlierRemovalStage{})
	base, _ := p.Run(ds)
	for _, w := range []int{2, 4, 8} {
		got, _ := p.RunParallel(ds, w)
		sameTrajectories(t, got.Trajectories, base.Trajectories)
	}
}

// recordingColumnarStage verifies dispatch: a stage that declares the
// Columnar trait must be driven through TransformColumns by the runner,
// never through Apply.
type recordingColumnarStage struct {
	transformed *int
	finished    *int
}

func (s recordingColumnarStage) Name() string { return "recording-columnar" }
func (s recordingColumnarStage) Task() Task   { return OutlierRemoval }
func (s recordingColumnarStage) Traits() StageTraits {
	return StageTraits{Shardable: true, ReplacesTrajectories: true, Columnar: true}
}
func (s recordingColumnarStage) Apply(ds *Dataset) {
	panic("columnar stage dispatched through Apply")
}
func (s recordingColumnarStage) TransformColumns(dst, src *trajectory.Columns, ds *Dataset) {
	*s.transformed++
	dst.Reset()
	n := src.Len()
	dst.Grow(n)
	for i := 0; i < n; i++ {
		dst.Append(src.T[i], src.X[i], src.Y[i])
	}
}
func (s recordingColumnarStage) FinishColumns(ctx context.Context, ds *Dataset) error {
	*s.finished++
	return nil
}

// TestRunnerDispatchesColumnarTrait pins the runner-side threading: the
// Columnar trait routes the stage through the struct-of-arrays path.
func TestRunnerDispatchesColumnarTrait(t *testing.T) {
	ds := spikyDataset(rand.New(rand.NewSource(73)), 4, 30)
	var transformed, finished int
	st := recordingColumnarStage{transformed: &transformed, finished: &finished}
	out, reports, err := DefaultRunner().Run(context.Background(), NewPipeline(st), ds)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(reports) != 1 || reports[0].Err != nil || reports[0].Skipped {
		t.Fatalf("unexpected report: %+v", reports)
	}
	if transformed != len(ds.Trajectories) {
		t.Fatalf("TransformColumns ran %d times, want %d", transformed, len(ds.Trajectories))
	}
	if finished != 1 {
		t.Fatalf("FinishColumns ran %d times, want 1", finished)
	}
	sameTrajectories(t, out.Trajectories, ds.Trajectories)
}

// TestCloneSharesTruthMap pins Dataset.Clone's documented context
// contract: the Truth map header is shared with the parent (ground
// truth is reference material, not per-clone state), while the data
// slices are fresh and trajectories deep-copied.
func TestCloneSharesTruthMap(t *testing.T) {
	truth := trajectory.New("a", []trajectory.Point{
		{T: 0, Pos: geo.Pt(0, 0)}, {T: 1, Pos: geo.Pt(1, 1)},
	})
	ds := spikyDataset(rand.New(rand.NewSource(74)), 2, 20)
	ds.Truth = map[string]*trajectory.Trajectory{"a": truth}

	for _, tc := range []struct {
		name  string
		clone *Dataset
	}{
		{"Clone", ds.Clone()},
		{"CloneCOW", ds.CloneCOW()},
	} {
		cl := tc.clone
		// Same map, not a copy: an insertion through the clone is visible
		// to the parent. (That visibility is exactly why the contract says
		// clone holders must treat Truth as read-only.)
		cl.Truth["probe-"+tc.name] = truth
		if _, ok := ds.Truth["probe-"+tc.name]; !ok {
			t.Fatalf("%s: Truth map was copied; the documented contract is sharing", tc.name)
		}
		delete(ds.Truth, "probe-"+tc.name)
		if cl.Truth["a"] != truth {
			t.Fatalf("%s: Truth entry not shared", tc.name)
		}
	}

	// Trajectory isolation differs between the two clones: deep copies
	// from Clone, shared pointers from CloneCOW.
	deep := ds.Clone()
	if deep.Trajectories[0] == ds.Trajectories[0] {
		t.Fatal("Clone shares trajectory pointers; want deep copies")
	}
	orig := ds.Trajectories[0].Points[0]
	deep.Trajectories[0].Points[0].Pos.X += 1000
	if ds.Trajectories[0].Points[0] != orig {
		t.Fatal("mutating a deep clone's points leaked into the parent")
	}
	cow := ds.CloneCOW()
	if cow.Trajectories[0] != ds.Trajectories[0] {
		t.Fatal("CloneCOW deep-copied trajectories; want shared pointers")
	}
}

// aosDeduplicate is DeduplicateStage's pre-columnar implementation,
// kept as the test reference: per-trajectory map[Point]bool dedup,
// then the readings merge.
func aosDeduplicate(s DeduplicateStage, ds *Dataset) {
	for i, tr := range ds.Trajectories {
		out := &trajectory.Trajectory{ID: tr.ID}
		seen := make(map[trajectory.Point]bool, tr.Len())
		for _, p := range tr.Points {
			if seen[p] {
				continue
			}
			seen[p] = true
			out.Points = append(out.Points, p)
		}
		ds.Trajectories[i] = out
	}
	if len(ds.Readings) > 0 {
		ds.Readings = integrate.Deduplicate(ds.Readings, s.CellSize, s.TimeBucket)
	}
}

// dupDataset builds trajectories rich in exact duplicates plus the
// float equality edge cases (NaN points, ±0 coordinates) and readings
// for the FinishColumns pass.
func dupDataset(rng *rand.Rand, nTraj, nPts int) *Dataset {
	ds := spikyDataset(rng, nTraj, 0)
	for k := range ds.Trajectories {
		pts := make([]trajectory.Point, 0, nPts)
		for len(pts) < nPts {
			switch rng.Intn(6) {
			case 0: // exact repeat of an earlier point
				if len(pts) > 0 {
					pts = append(pts, pts[rng.Intn(len(pts))])
					continue
				}
			case 1: // NaN point, possibly repeated verbatim
				pts = append(pts, trajectory.Point{T: math.NaN(), Pos: geo.Pt(1, 2)})
				continue
			case 2: // zero spellings
				pts = append(pts, trajectory.Point{
					T:   float64(rng.Intn(3)),
					Pos: geo.Pt(math.Copysign(0, -1), 0),
				})
				continue
			}
			pts = append(pts, trajectory.Point{
				T:   float64(rng.Intn(8)),
				Pos: geo.Pt(float64(rng.Intn(4)), float64(rng.Intn(4))),
			})
		}
		ds.Trajectories[k].Points = pts
	}
	return ds
}

// TestDeduplicateColumnarMatchesAoS pins the columnar dedup stage
// against the pre-columnar AoS implementation bit for bit, including
// map-key float semantics (NaN kept, +0 == -0) and the readings pass.
func TestDeduplicateColumnarMatchesAoS(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 25; trial++ {
		ds := dupDataset(rng, 1+rng.Intn(5), rng.Intn(120))
		st := DeduplicateStage{}

		want := ds.Clone()
		aosDeduplicate(st, want)

		got := ds.Clone()
		if err := st.ApplyContext(context.Background(), got); err != nil {
			t.Fatalf("trial %d: ApplyContext: %v", trial, err)
		}
		sameTrajectories(t, got.Trajectories, want.Trajectories)
		if len(got.Readings) != len(want.Readings) {
			t.Fatalf("trial %d: %d readings, want %d", trial, len(got.Readings), len(want.Readings))
		}
		for i := range want.Readings {
			if got.Readings[i] != want.Readings[i] {
				t.Fatalf("trial %d: reading %d diverged", trial, i)
			}
		}
	}
}

// TestDeduplicateColumnarAcrossWorkers runs the columnar dedup under
// the parallel runner at several worker counts and requires output
// identical to the serial path.
func TestDeduplicateColumnarAcrossWorkers(t *testing.T) {
	ds := dupDataset(rand.New(rand.NewSource(74)), 9, 150)
	p := NewPipeline(DeduplicateStage{})
	base, _ := p.Run(ds)
	for _, w := range []int{2, 4, 8} {
		out, _ := p.RunParallel(ds, w)
		sameTrajectories(t, out.Trajectories, base.Trajectories)
	}
}
