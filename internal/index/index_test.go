package index

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"sidq/internal/geo"
	"sidq/internal/trajectory"
)

func randomEntries(n int, extent float64, seed int64) []PointEntry {
	rng := rand.New(rand.NewSource(seed))
	out := make([]PointEntry, n)
	for i := range out {
		out[i] = PointEntry{
			ID:  fmt.Sprintf("p%d", i),
			Pos: geo.Pt(rng.Float64()*extent, rng.Float64()*extent),
		}
	}
	return out
}

func bruteRange(entries []PointEntry, rect geo.Rect) map[string]bool {
	out := map[string]bool{}
	for _, e := range entries {
		if rect.Contains(e.Pos) {
			out[e.ID] = true
		}
	}
	return out
}

func bruteKNN(entries []PointEntry, q geo.Point, k int) []string {
	sorted := append([]PointEntry(nil), entries...)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].Pos.DistSq(q) < sorted[j].Pos.DistSq(q)
	})
	if k > len(sorted) {
		k = len(sorted)
	}
	ids := make([]string, k)
	for i := 0; i < k; i++ {
		ids[i] = sorted[i].ID
	}
	return ids
}

func TestGridRangeMatchesBruteForce(t *testing.T) {
	entries := randomEntries(500, 1000, 1)
	g := NewGrid(geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1000, 1000)}, 50)
	for _, e := range entries {
		g.Insert(e)
	}
	if g.Len() != 500 {
		t.Fatalf("len = %d", g.Len())
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		c := geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
		rect := geo.RectFromCenter(c, rng.Float64()*200, rng.Float64()*200)
		want := bruteRange(entries, rect)
		got := g.Range(rect)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d want %d", trial, len(got), len(want))
		}
		for _, e := range got {
			if !want[e.ID] {
				t.Fatalf("trial %d: unexpected %s", trial, e.ID)
			}
		}
	}
}

func TestGridKNNMatchesBruteForce(t *testing.T) {
	entries := randomEntries(300, 1000, 3)
	g := NewGrid(geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1000, 1000)}, 40)
	for _, e := range entries {
		g.Insert(e)
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		q := geo.Pt(rng.Float64()*1200-100, rng.Float64()*1200-100)
		k := 1 + rng.Intn(10)
		got := g.KNN(q, k)
		want := bruteKNN(entries, q, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i].Entry.ID != want[i] {
				// Ties can reorder; compare distances instead.
				wd := 0.0
				for _, e := range entries {
					if e.ID == want[i] {
						wd = e.Pos.Dist(q)
					}
				}
				if diff := got[i].Dist - wd; diff > 1e-9 || diff < -1e-9 {
					t.Fatalf("trial %d rank %d: got %s(%f) want %s(%f)",
						trial, i, got[i].Entry.ID, got[i].Dist, want[i], wd)
				}
			}
		}
	}
}

func TestGridKNNEdgeCases(t *testing.T) {
	g := NewGrid(geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(10, 10)}, 1)
	if g.KNN(geo.Pt(5, 5), 3) != nil {
		t.Fatal("empty grid KNN should be nil")
	}
	g.Insert(PointEntry{ID: "a", Pos: geo.Pt(1, 1)})
	res := g.KNN(geo.Pt(0, 0), 10) // k > count
	if len(res) != 1 || res[0].Entry.ID != "a" {
		t.Fatalf("res = %+v", res)
	}
	if g.KNN(geo.Pt(0, 0), 0) != nil {
		t.Fatal("k=0 should be nil")
	}
}

func TestGridRemove(t *testing.T) {
	g := NewGrid(geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(10, 10)}, 1)
	e := PointEntry{ID: "a", Pos: geo.Pt(5, 5)}
	g.Insert(e)
	if !g.Remove("a", e.Pos) {
		t.Fatal("remove failed")
	}
	if g.Remove("a", e.Pos) {
		t.Fatal("double remove should fail")
	}
	if g.Len() != 0 {
		t.Fatalf("len = %d", g.Len())
	}
}

func TestGridOutOfBoundsClamping(t *testing.T) {
	g := NewGrid(geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(10, 10)}, 1)
	g.Insert(PointEntry{ID: "out", Pos: geo.Pt(-100, 200)})
	if g.Len() != 1 {
		t.Fatal("clamped insert lost")
	}
	// It is still findable via a rect that covers its true position.
	got := g.Range(geo.Rect{Min: geo.Pt(-200, 100), Max: geo.Pt(0, 300)})
	if len(got) != 1 {
		t.Fatalf("clamped point not found: %v", got)
	}
}

func TestRTreeSearchMatchesBruteForce(t *testing.T) {
	entries := randomEntries(800, 1000, 5)
	rt := NewRTree()
	for _, e := range entries {
		rt.Insert(RectEntry{ID: e.ID, Rect: geo.RectFromCenter(e.Pos, 2, 2)})
	}
	if rt.Len() != 800 {
		t.Fatalf("len = %d", rt.Len())
	}
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 50; trial++ {
		c := geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
		rect := geo.RectFromCenter(c, rng.Float64()*150, rng.Float64()*150)
		want := map[string]bool{}
		for _, e := range entries {
			if geo.RectFromCenter(e.Pos, 2, 2).Intersects(rect) {
				want[e.ID] = true
			}
		}
		got := rt.Search(rect)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d want %d", trial, len(got), len(want))
		}
		for _, e := range got {
			if !want[e.ID] {
				t.Fatalf("trial %d: unexpected %s", trial, e.ID)
			}
		}
	}
}

func TestRTreeKNNMatchesBruteForce(t *testing.T) {
	entries := randomEntries(400, 1000, 7)
	rt := NewRTree()
	for _, e := range entries {
		rt.Insert(RectEntry{ID: e.ID, Rect: geo.Rect{Min: e.Pos, Max: e.Pos}})
	}
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 30; trial++ {
		q := geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
		k := 1 + rng.Intn(12)
		got := rt.KNN(q, k)
		want := bruteKNN(entries, q, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d want %d", trial, len(got), len(want))
		}
		for i := range got {
			wd := 0.0
			for _, e := range entries {
				if e.ID == want[i] {
					wd = e.Pos.Dist(q)
				}
			}
			if diff := got[i].Dist - wd; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("trial %d rank %d: dist %f want %f", trial, i, got[i].Dist, wd)
			}
		}
	}
}

func TestRTreeEmptyAndSmall(t *testing.T) {
	rt := NewRTree()
	if rt.Search(geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1, 1)}) != nil {
		t.Fatal("empty search should be nil")
	}
	if rt.KNN(geo.Pt(0, 0), 3) != nil {
		t.Fatal("empty KNN should be nil")
	}
	rt.Insert(RectEntry{ID: "x", Rect: geo.RectFromCenter(geo.Pt(5, 5), 1, 1)})
	got := rt.Search(geo.RectFromCenter(geo.Pt(5, 5), 10, 10))
	if len(got) != 1 || got[0].ID != "x" {
		t.Fatalf("got %+v", got)
	}
}

func TestRTreeInsertOrderInvariance(t *testing.T) {
	entries := randomEntries(200, 500, 9)
	query := geo.RectFromCenter(geo.Pt(250, 250), 100, 100)
	build := func(perm []int) int {
		rt := NewRTree()
		for _, i := range perm {
			e := entries[i]
			rt.Insert(RectEntry{ID: e.ID, Rect: geo.Rect{Min: e.Pos, Max: e.Pos}})
		}
		return len(rt.Search(query))
	}
	fwd := make([]int, len(entries))
	rev := make([]int, len(entries))
	for i := range fwd {
		fwd[i] = i
		rev[i] = len(entries) - 1 - i
	}
	if build(fwd) != build(rev) {
		t.Fatal("search result count depends on insert order")
	}
}

func TestQuadtreeRangeMatchesBruteForce(t *testing.T) {
	entries := randomEntries(600, 1000, 10)
	qt := NewQuadtree(geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1000, 1000)})
	for _, e := range entries {
		if !qt.Insert(e) {
			t.Fatalf("insert %s rejected", e.ID)
		}
	}
	if qt.Len() != 600 {
		t.Fatalf("len = %d", qt.Len())
	}
	if qt.Depth() == 0 {
		t.Fatal("tree should have split")
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		c := geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
		rect := geo.RectFromCenter(c, rng.Float64()*200, rng.Float64()*200)
		want := bruteRange(entries, rect)
		got := qt.Range(rect)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d want %d", trial, len(got), len(want))
		}
	}
}

func TestQuadtreeRejectsOutside(t *testing.T) {
	qt := NewQuadtree(geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(10, 10)})
	if qt.Insert(PointEntry{ID: "x", Pos: geo.Pt(11, 5)}) {
		t.Fatal("outside insert accepted")
	}
	if qt.Len() != 0 {
		t.Fatal("len after rejection")
	}
}

func TestQuadtreeDuplicatePointsDoNotRecurseForever(t *testing.T) {
	qt := NewQuadtree(geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(10, 10)})
	for i := 0; i < 100; i++ {
		qt.Insert(PointEntry{ID: fmt.Sprintf("d%d", i), Pos: geo.Pt(3, 3)})
	}
	if qt.Len() != 100 {
		t.Fatalf("len = %d", qt.Len())
	}
	got := qt.Range(geo.RectFromCenter(geo.Pt(3, 3), 0.5, 0.5))
	if len(got) != 100 {
		t.Fatalf("range found %d", len(got))
	}
}

func makeTraj(id string, start geo.Point, vx, vy, t0 float64, n int, dt float64) *trajectory.Trajectory {
	pts := make([]trajectory.Point, n)
	for i := range pts {
		t := t0 + float64(i)*dt
		pts[i] = trajectory.Point{T: t, Pos: start.Add(geo.Pt(vx*(t-t0), vy*(t-t0)))}
	}
	return trajectory.New(id, pts)
}

func TestTrajectoryIndexRangeQuery(t *testing.T) {
	ix := NewTrajectoryIndex(30)
	// a crosses the query region during [40, 60]; b never does;
	// c is in the region but outside the query time window.
	a := makeTraj("a", geo.Pt(0, 0), 10, 0, 0, 101, 1)    // along x, reaches x=500 at t=50
	b := makeTraj("b", geo.Pt(0, 5000), 10, 0, 0, 101, 1) // far north
	c := makeTraj("c", geo.Pt(450, 0), 10, 0, 200, 21, 1) // in region at t≈205 only
	ix.Add(a)
	ix.Add(b)
	ix.Add(c)
	if ix.Len() != 3 {
		t.Fatalf("len = %d", ix.Len())
	}
	rect := geo.Rect{Min: geo.Pt(400, -10), Max: geo.Pt(600, 10)}
	got := ix.RangeQuery(rect, 40, 60)
	if len(got) != 1 || got[0] != "a" {
		t.Fatalf("got %v, want [a]", got)
	}
	// Widen the time window to include c.
	got = ix.RangeQuery(rect, 40, 210)
	if len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Fatalf("got %v, want [a c]", got)
	}
	if ix.RangeQuery(rect, 60, 40) != nil {
		t.Fatal("inverted window should be nil")
	}
}

func TestTrajectoryIndexBoundaryCrossing(t *testing.T) {
	// A sparse trajectory whose segment crosses the query rect between
	// samples: samples at t=0 (x=0) and t=100 (x=1000); it passes
	// through x=500 at t=50 with no sample nearby.
	ix := NewTrajectoryIndex(10)
	tr := trajectory.New("sparse", []trajectory.Point{
		{T: 0, Pos: geo.Pt(0, 0)},
		{T: 100, Pos: geo.Pt(1000, 0)},
	})
	ix.Add(tr)
	rect := geo.RectFromCenter(geo.Pt(500, 0), 20, 20)
	got := ix.RangeQuery(rect, 45, 55)
	if len(got) != 1 {
		t.Fatalf("sparse crossing not found: %v", got)
	}
	// Time window when the object is elsewhere.
	if got := ix.RangeQuery(rect, 0, 10); len(got) != 0 {
		t.Fatalf("false positive: %v", got)
	}
}

func TestTrajectoryIndexGet(t *testing.T) {
	ix := NewTrajectoryIndex(10)
	tr := makeTraj("x", geo.Pt(0, 0), 1, 1, 0, 10, 1)
	ix.Add(tr)
	got, ok := ix.Get("x")
	if !ok || got.ID != "x" {
		t.Fatal("get failed")
	}
	if _, ok := ix.Get("nope"); ok {
		t.Fatal("missing id found")
	}
}

func TestSegmentIntersectsRectProperty(t *testing.T) {
	rect := geo.Rect{Min: geo.Pt(-10, -10), Max: geo.Pt(10, 10)}
	f := func(ax, ay, bx, by float64) bool {
		bound := func(v float64) float64 {
			if v != v || v > 1e9 || v < -1e9 {
				return 0
			}
			return v
		}
		pa := geo.Pt(bound(ax), bound(ay))
		pb := geo.Pt(bound(bx), bound(by))
		got := segmentIntersectsRect(pa, pb, rect)
		// Brute force: sample the segment densely.
		want := false
		for i := 0; i <= 200; i++ {
			if rect.Contains(pa.Lerp(pb, float64(i)/200)) {
				want = true
				break
			}
		}
		// Dense sampling can miss grazing intersections that the exact
		// test finds, so only flag the dangerous direction (exact test
		// missing a sampled hit).
		return got || !want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
