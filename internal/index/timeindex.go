package index

import (
	"math"
	"sort"

	"sidq/internal/geo"
	"sidq/internal/trajectory"
)

// TrajectoryIndex is a spatio-temporal index over trajectories: time is
// partitioned into fixed buckets, and each bucket holds an R-tree of
// the bounding rectangles of trajectory sub-segments that overlap it.
// This is the classic 3D-range access method used for historical
// moving-object queries.
type TrajectoryIndex struct {
	bucket  float64
	buckets map[int64]*RTree
	trs     map[string]*trajectory.Trajectory
}

// NewTrajectoryIndex returns an index with the given time-bucket width
// in seconds (must be positive; defaults to 60 otherwise).
func NewTrajectoryIndex(bucketSeconds float64) *TrajectoryIndex {
	if bucketSeconds <= 0 {
		bucketSeconds = 60
	}
	return &TrajectoryIndex{
		bucket:  bucketSeconds,
		buckets: make(map[int64]*RTree),
		trs:     make(map[string]*trajectory.Trajectory),
	}
}

// Add indexes a trajectory. Re-adding an id replaces the stored
// trajectory but does not remove stale bucket entries; use a fresh
// index for rebuild semantics.
func (ix *TrajectoryIndex) Add(tr *trajectory.Trajectory) {
	if tr.Len() == 0 {
		return
	}
	ix.trs[tr.ID] = tr
	t0, t1, _ := tr.TimeBounds()
	for b := int64(math.Floor(t0 / ix.bucket)); b <= int64(math.Floor(t1/ix.bucket)); b++ {
		lo, hi := float64(b)*ix.bucket, float64(b+1)*ix.bucket
		sub := tr.Slice(lo, hi) // points within the bucket
		rect := sub.Bounds()
		// Include the interpolated positions at the bucket boundaries so
		// segments crossing bucket edges are covered.
		if p, ok := tr.LocationAt(lo); ok {
			rect = rect.ExtendPoint(p)
		}
		if p, ok := tr.LocationAt(hi); ok {
			rect = rect.ExtendPoint(p)
		}
		if rect.IsEmpty() {
			continue
		}
		rt, ok := ix.buckets[b]
		if !ok {
			rt = NewRTree()
			ix.buckets[b] = rt
		}
		rt.Insert(RectEntry{ID: tr.ID, Rect: rect})
	}
}

// Get returns the stored trajectory by id.
func (ix *TrajectoryIndex) Get(id string) (*trajectory.Trajectory, bool) {
	tr, ok := ix.trs[id]
	return tr, ok
}

// Len returns the number of indexed trajectories.
func (ix *TrajectoryIndex) Len() int { return len(ix.trs) }

// RangeQuery returns the ids of trajectories that have an interpolated
// position inside rect at some time in [t0, t1]. Candidate pruning uses
// the bucket R-trees; candidates are verified against the actual
// geometry by sampling the motion at sub-bucket resolution.
func (ix *TrajectoryIndex) RangeQuery(rect geo.Rect, t0, t1 float64) []string {
	if t1 < t0 || rect.IsEmpty() {
		return nil
	}
	cands := map[string]bool{}
	for b := int64(math.Floor(t0 / ix.bucket)); b <= int64(math.Floor(t1/ix.bucket)); b++ {
		rt, ok := ix.buckets[b]
		if !ok {
			continue
		}
		for _, e := range rt.Search(rect) {
			cands[e.ID] = true
		}
	}
	var out []string
	for id := range cands {
		if ix.verify(ix.trs[id], rect, t0, t1) {
			out = append(out, id)
		}
	}
	sortStrings(out)
	return out
}

// verify checks whether tr's interpolated position enters rect during
// [t0, t1], by checking each motion segment overlapping the window.
func (ix *TrajectoryIndex) verify(tr *trajectory.Trajectory, rect geo.Rect, t0, t1 float64) bool {
	if tr == nil {
		return false
	}
	pts := tr.Points
	for i := 0; i < len(pts); i++ {
		if pts[i].T >= t0 && pts[i].T <= t1 && rect.Contains(pts[i].Pos) {
			return true
		}
		if i == 0 {
			continue
		}
		a, b := pts[i-1], pts[i]
		if b.T < t0 || a.T > t1 || a.T == b.T {
			continue
		}
		// Clip the segment to the time window and test the clipped chord.
		loT := math.Max(a.T, t0)
		hiT := math.Min(b.T, t1)
		fa := (loT - a.T) / (b.T - a.T)
		fb := (hiT - a.T) / (b.T - a.T)
		pa := a.Pos.Lerp(b.Pos, fa)
		pb := a.Pos.Lerp(b.Pos, fb)
		if segmentIntersectsRect(pa, pb, rect) {
			return true
		}
	}
	return false
}

// segmentIntersectsRect reports whether the segment pa-pb intersects
// rect, using a standard slab (Liang-Barsky style) clip test.
func segmentIntersectsRect(pa, pb geo.Point, rect geo.Rect) bool {
	if rect.Contains(pa) || rect.Contains(pb) {
		return true
	}
	d := pb.Sub(pa)
	tmin, tmax := 0.0, 1.0
	for _, axis := range [2][3]float64{
		{d.X, pa.X - rect.Min.X, rect.Max.X - pa.X},
		{d.Y, pa.Y - rect.Min.Y, rect.Max.Y - pa.Y},
	} {
		dir, toMin, toMax := axis[0], axis[1], axis[2]
		if dir == 0 {
			if toMin < 0 || toMax < 0 {
				return false
			}
			continue
		}
		t1 := -toMin / dir // param where axis = min
		t2 := toMax / dir  // param where axis = max
		lo, hi := t1, t2
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo > tmin {
			tmin = lo
		}
		if hi < tmax {
			tmax = hi
		}
		if tmin > tmax {
			return false
		}
	}
	return true
}

func sortStrings(s []string) { sort.Strings(s) }
