// Package index provides the spatial access methods used by sidq's
// query and analysis layers: a uniform grid for point data, an R-tree
// for rectangles, a point quadtree, and a time-bucketed spatio-temporal
// index for trajectories.
//
// # Concurrency contract
//
// Every structure here is in-memory and follows the same build-then-
// read discipline; none carries internal locking.
//
//   - Grid: Insert and Remove require exclusive access. Range and KNN
//     are read-only and safe to call from any number of goroutines once
//     no writer is active.
//   - RTree: Insert requires exclusive access. Search and KNN are
//     read-only and safe concurrently after loading. BulkLoadRTree and
//     BulkLoadRTreeParallel return a fully-constructed tree with no
//     retained references to internal state, so the returned tree may
//     be shared across goroutines for reads immediately (parallel
//     loading of one tree is internal to the call; callers never
//     observe a partially-built tree).
//   - Quadtree: Insert requires exclusive access; Range and Depth are
//     concurrent-read safe after loading.
//   - TrajectoryIndex: Add requires exclusive access; Get, Len, and
//     RangeQuery are concurrent-read safe after loading.
//
// "Safe after loading" means the caller must establish a happens-before
// edge between the last write and the first concurrent read (e.g. by
// starting the reader goroutines after the build returns, or via
// channel/WaitGroup handoff) — the structures add no synchronization of
// their own. Mixing even one writer with readers requires external
// locking. These invariants are exercised under the race detector in
// concurrency_test.go.
package index

import (
	"container/heap"
	"math"

	"sidq/internal/geo"
)

// PointEntry is a point payload stored in a point index.
type PointEntry struct {
	ID  string
	Pos geo.Point
}

// Grid is a uniform grid over a fixed extent. Points outside the extent
// are clamped into the border cells, so inserts never fail.
type Grid struct {
	bounds   geo.Rect
	cellSize float64
	nx, ny   int
	cells    [][]PointEntry
	count    int
}

// NewGrid returns a grid covering bounds with square cells of the given
// size. cellSize must be positive and bounds non-empty.
func NewGrid(bounds geo.Rect, cellSize float64) *Grid {
	if bounds.IsEmpty() || cellSize <= 0 {
		bounds = geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1, 1)}
		cellSize = 1
	}
	nx := int(math.Ceil(bounds.Width() / cellSize))
	ny := int(math.Ceil(bounds.Height() / cellSize))
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	return &Grid{
		bounds:   bounds,
		cellSize: cellSize,
		nx:       nx,
		ny:       ny,
		cells:    make([][]PointEntry, nx*ny),
	}
}

// Len returns the number of stored entries.
func (g *Grid) Len() int { return g.count }

// Bounds returns the grid extent.
func (g *Grid) Bounds() geo.Rect { return g.bounds }

func (g *Grid) cellOf(p geo.Point) (int, int) {
	cx := int((p.X - g.bounds.Min.X) / g.cellSize)
	cy := int((p.Y - g.bounds.Min.Y) / g.cellSize)
	if cx < 0 {
		cx = 0
	}
	if cx >= g.nx {
		cx = g.nx - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= g.ny {
		cy = g.ny - 1
	}
	return cx, cy
}

// Insert adds an entry to the grid.
func (g *Grid) Insert(e PointEntry) {
	cx, cy := g.cellOf(e.Pos)
	i := cy*g.nx + cx
	g.cells[i] = append(g.cells[i], e)
	g.count++
}

// Remove deletes the first entry with the given id at the given
// position. It reports whether an entry was removed.
func (g *Grid) Remove(id string, pos geo.Point) bool {
	cx, cy := g.cellOf(pos)
	i := cy*g.nx + cx
	for j, e := range g.cells[i] {
		if e.ID == id {
			g.cells[i] = append(g.cells[i][:j], g.cells[i][j+1:]...)
			g.count--
			return true
		}
	}
	return false
}

// Range returns all entries whose position lies in rect.
func (g *Grid) Range(rect geo.Rect) []PointEntry {
	if rect.IsEmpty() || g.count == 0 {
		return nil
	}
	lox, loy := g.cellOf(rect.Min)
	hix, hiy := g.cellOf(rect.Max)
	var out []PointEntry
	for cy := loy; cy <= hiy; cy++ {
		for cx := lox; cx <= hix; cx++ {
			for _, e := range g.cells[cy*g.nx+cx] {
				if rect.Contains(e.Pos) {
					out = append(out, e)
				}
			}
		}
	}
	return out
}

// Neighbor is a k-nearest-neighbor search result.
type Neighbor struct {
	Entry PointEntry
	Dist  float64
}

// KNN returns the k entries nearest to q, ordered by increasing
// distance. It expands the search ring by rings of cells until the k-th
// best distance is provably final.
func (g *Grid) KNN(q geo.Point, k int) []Neighbor {
	if k <= 0 || g.count == 0 {
		return nil
	}
	if k > g.count {
		k = g.count
	}
	cx, cy := g.cellOf(q)
	best := &maxNeighborHeap{}
	maxRing := g.nx
	if g.ny > maxRing {
		maxRing = g.ny
	}
	for ring := 0; ring <= maxRing; ring++ {
		// Once the heap is full, stop if the nearest possible point in
		// this ring is farther than the current k-th best.
		if best.Len() == k {
			minPossible := (float64(ring) - 1) * g.cellSize
			if minPossible > (*best)[0].Dist {
				break
			}
		}
		g.visitRing(cx, cy, ring, func(e PointEntry) {
			d := e.Pos.Dist(q)
			if best.Len() < k {
				heap.Push(best, Neighbor{Entry: e, Dist: d})
			} else if d < (*best)[0].Dist {
				(*best)[0] = Neighbor{Entry: e, Dist: d}
				heap.Fix(best, 0)
			}
		})
	}
	out := make([]Neighbor, best.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(best).(Neighbor)
	}
	return out
}

// visitRing calls fn for each entry in cells at Chebyshev distance ring
// from (cx, cy).
func (g *Grid) visitRing(cx, cy, ring int, fn func(PointEntry)) {
	if ring == 0 {
		for _, e := range g.cells[cy*g.nx+cx] {
			fn(e)
		}
		return
	}
	for dx := -ring; dx <= ring; dx++ {
		for _, dy := range ringDYs(dx, ring) {
			x, y := cx+dx, cy+dy
			if x < 0 || x >= g.nx || y < 0 || y >= g.ny {
				continue
			}
			for _, e := range g.cells[y*g.nx+x] {
				fn(e)
			}
		}
	}
}

func ringDYs(dx, ring int) []int {
	if dx == -ring || dx == ring {
		ys := make([]int, 0, 2*ring+1)
		for dy := -ring; dy <= ring; dy++ {
			ys = append(ys, dy)
		}
		return ys
	}
	return []int{-ring, ring}
}

// maxNeighborHeap is a max-heap of neighbors by distance, used to keep
// the best k seen so far.
type maxNeighborHeap []Neighbor

func (h maxNeighborHeap) Len() int            { return len(h) }
func (h maxNeighborHeap) Less(i, j int) bool  { return h[i].Dist > h[j].Dist }
func (h maxNeighborHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxNeighborHeap) Push(x interface{}) { *h = append(*h, x.(Neighbor)) }
func (h *maxNeighborHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}
