package index

import (
	"fmt"
	"math/rand"
	"testing"

	"sidq/internal/geo"
)

func TestBulkLoadMatchesIncremental(t *testing.T) {
	entries := randomEntries(2000, 1000, 20)
	rects := make([]RectEntry, len(entries))
	inc := NewRTree()
	for i, e := range entries {
		rects[i] = RectEntry{ID: e.ID, Rect: geo.RectFromCenter(e.Pos, 3, 3)}
		inc.Insert(rects[i])
	}
	bulk := BulkLoadRTree(rects)
	if bulk.Len() != len(rects) {
		t.Fatalf("len = %d", bulk.Len())
	}
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		q := geo.RectFromCenter(
			geo.Pt(rng.Float64()*1000, rng.Float64()*1000),
			rng.Float64()*150, rng.Float64()*150)
		a := bulk.Search(q)
		b := inc.Search(q)
		if len(a) != len(b) {
			t.Fatalf("trial %d: bulk %d vs incremental %d", trial, len(a), len(b))
		}
	}
	// kNN also agrees on distances.
	for trial := 0; trial < 20; trial++ {
		q := geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
		a := bulk.KNN(q, 5)
		b := inc.KNN(q, 5)
		for i := range a {
			if d := a[i].Dist - b[i].Dist; d > 1e-9 || d < -1e-9 {
				t.Fatalf("trial %d rank %d: %v vs %v", trial, i, a[i].Dist, b[i].Dist)
			}
		}
	}
}

func TestBulkLoadEmptyAndSmall(t *testing.T) {
	if BulkLoadRTree(nil).Len() != 0 {
		t.Fatal("empty bulk load")
	}
	one := BulkLoadRTree([]RectEntry{{ID: "x", Rect: geo.RectFromCenter(geo.Pt(1, 1), 1, 1)}})
	if got := one.Search(geo.RectFromCenter(geo.Pt(1, 1), 5, 5)); len(got) != 1 {
		t.Fatalf("single entry search: %v", got)
	}
}

func TestBulkLoadInsertAfterLoad(t *testing.T) {
	rects := make([]RectEntry, 100)
	for i := range rects {
		rects[i] = RectEntry{ID: fmt.Sprintf("b%d", i), Rect: geo.RectFromCenter(geo.Pt(float64(i), 0), 1, 1)}
	}
	rt := BulkLoadRTree(rects)
	rt.Insert(RectEntry{ID: "late", Rect: geo.RectFromCenter(geo.Pt(50, 100), 1, 1)})
	got := rt.Search(geo.RectFromCenter(geo.Pt(50, 100), 5, 5))
	if len(got) != 1 || got[0].ID != "late" {
		t.Fatalf("post-load insert lost: %v", got)
	}
	if rt.Len() != 101 {
		t.Fatalf("len = %d", rt.Len())
	}
}
