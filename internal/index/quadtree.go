package index

import (
	"sidq/internal/geo"
)

const quadtreeCapacity = 8

// Quadtree is a region quadtree over point entries with a fixed extent.
// Points outside the extent are rejected by Insert.
type Quadtree struct {
	root  *quadNode
	count int
}

type quadNode struct {
	bounds   geo.Rect
	entries  []PointEntry
	children *[4]*quadNode // nil until split
	depth    int
}

const quadtreeMaxDepth = 24

// NewQuadtree returns an empty quadtree covering bounds.
func NewQuadtree(bounds geo.Rect) *Quadtree {
	return &Quadtree{root: &quadNode{bounds: bounds}}
}

// Len returns the number of stored entries.
func (q *Quadtree) Len() int { return q.count }

// Insert adds an entry; it reports false if the point is outside the
// tree's extent.
func (q *Quadtree) Insert(e PointEntry) bool {
	if !q.root.bounds.Contains(e.Pos) {
		return false
	}
	q.root.insert(e)
	q.count++
	return true
}

func (n *quadNode) insert(e PointEntry) {
	if n.children == nil {
		if len(n.entries) < quadtreeCapacity || n.depth >= quadtreeMaxDepth {
			n.entries = append(n.entries, e)
			return
		}
		n.split()
	}
	n.childFor(e.Pos).insert(e)
}

func (n *quadNode) split() {
	c := n.bounds.Center()
	b := n.bounds
	n.children = &[4]*quadNode{
		{bounds: geo.Rect{Min: b.Min, Max: c}, depth: n.depth + 1},                                   // SW
		{bounds: geo.Rect{Min: geo.Pt(c.X, b.Min.Y), Max: geo.Pt(b.Max.X, c.Y)}, depth: n.depth + 1}, // SE
		{bounds: geo.Rect{Min: geo.Pt(b.Min.X, c.Y), Max: geo.Pt(c.X, b.Max.Y)}, depth: n.depth + 1}, // NW
		{bounds: geo.Rect{Min: c, Max: b.Max}, depth: n.depth + 1},                                   // NE
	}
	old := n.entries
	n.entries = nil
	for _, e := range old {
		n.childFor(e.Pos).insert(e)
	}
}

func (n *quadNode) childFor(p geo.Point) *quadNode {
	c := n.bounds.Center()
	i := 0
	if p.X >= c.X {
		i++
	}
	if p.Y >= c.Y {
		i += 2
	}
	return n.children[i]
}

// Range returns all entries with positions inside rect.
func (q *Quadtree) Range(rect geo.Rect) []PointEntry {
	var out []PointEntry
	q.root.query(rect, &out)
	return out
}

func (n *quadNode) query(rect geo.Rect, out *[]PointEntry) {
	if !n.bounds.Intersects(rect) {
		return
	}
	for _, e := range n.entries {
		if rect.Contains(e.Pos) {
			*out = append(*out, e)
		}
	}
	if n.children != nil {
		for _, c := range n.children {
			c.query(rect, out)
		}
	}
}

// Depth returns the maximum depth of the tree (0 for a leaf root).
func (q *Quadtree) Depth() int { return q.root.maxDepth() }

func (n *quadNode) maxDepth() int {
	if n.children == nil {
		return 0
	}
	var d int
	for _, c := range n.children {
		if cd := c.maxDepth(); cd > d {
			d = cd
		}
	}
	return d + 1
}
