package index

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"sidq/internal/geo"
)

// tieHeavyEntries generates n rect entries with deliberately coarse
// (quantized) coordinates so many centers collide — the worst case for
// byte-identity of an unstable sort, which the total-order comparators
// must absorb.
func tieHeavyEntries(n int, seed int64) []RectEntry {
	rng := rand.New(rand.NewSource(seed))
	out := make([]RectEntry, n)
	for i := range out {
		x := float64(rng.Intn(40)) * 25
		y := float64(rng.Intn(40)) * 25
		w := 1 + float64(rng.Intn(3))
		out[i] = RectEntry{ID: fmt.Sprintf("e%05d", i), Rect: geo.RectFromCenter(geo.Pt(x, y), w, w)}
	}
	return out
}

// TestBulkLoadParallelIdenticalToSerial checks the tentpole invariant
// for the index layer: parallel STR bulk load yields a structurally
// identical tree (same nodes, same entry order) at every worker count,
// including inputs large enough to take the parallel sort path and
// inputs full of comparator ties.
func TestBulkLoadParallelIdenticalToSerial(t *testing.T) {
	for _, n := range []int{50, 1000, 3*parallelSortMin + 17} {
		entries := tieHeavyEntries(n, int64(n))
		serial := BulkLoadRTree(entries)
		for _, w := range []int{1, 2, 3, 8} {
			par := BulkLoadRTreeParallel(entries, w)
			if par.Len() != serial.Len() {
				t.Fatalf("n=%d workers=%d: len %d vs %d", n, w, par.Len(), serial.Len())
			}
			if !reflect.DeepEqual(par, serial) {
				t.Fatalf("n=%d workers=%d: parallel tree differs structurally from serial", n, w)
			}
		}
	}
}

// TestBulkLoadParallelDoesNotMutateInput pins that both load paths
// leave the caller's entry slice untouched (they sort a copy).
func TestBulkLoadParallelDoesNotMutateInput(t *testing.T) {
	entries := tieHeavyEntries(parallelSortMin+5, 3)
	orig := append([]RectEntry(nil), entries...)
	BulkLoadRTree(entries)
	BulkLoadRTreeParallel(entries, 4)
	if !reflect.DeepEqual(entries, orig) {
		t.Fatal("bulk load reordered the caller's slice")
	}
}

// TestConcurrentReadersAfterLoad hammers every index structure with
// concurrent readers after single-threaded loading — the documented
// concurrency contract — so the race detector can vouch for it.
func TestConcurrentReadersAfterLoad(t *testing.T) {
	const readers = 8
	const queries = 200
	points := randomEntries(3000, 1000, 77)

	grid := NewGrid(geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1000, 1000)}, 25)
	qt := NewQuadtree(geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1000, 1000)})
	for _, e := range points {
		grid.Insert(e)
		qt.Insert(e)
	}
	rt := BulkLoadRTreeParallel(tieHeavyEntries(3000, 7), 4)
	ti := NewTrajectoryIndex(60)
	for i := 0; i < 20; i++ {
		ti.Add(makeTraj(fmt.Sprintf("t%d", i), geo.Pt(float64(i*40), 0), 1, 1, 0, 100, 1))
	}

	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for q := 0; q < queries; q++ {
				p := geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
				rect := geo.RectFromCenter(p, 50, 50)
				if got := grid.Range(rect); len(got) == 0 && q == -1 {
					t.Error("unreachable")
				}
				grid.KNN(p, 5)
				rt.Search(rect)
				rt.KNN(p, 3)
				qt.Range(rect)
				ti.RangeQuery(rect, 0, 100)
				ti.Get("t3")
			}
		}(int64(r))
	}
	wg.Wait()

	if grid.Len() != 3000 || qt.Len() != 3000 || rt.Len() != 3000 || ti.Len() != 20 {
		t.Fatalf("lengths changed under read load: %d %d %d %d",
			grid.Len(), qt.Len(), rt.Len(), ti.Len())
	}
}
