package index

import (
	"container/heap"

	"sidq/internal/geo"
)

// RectEntry is a rectangle payload stored in an R-tree.
type RectEntry struct {
	ID   string
	Rect geo.Rect
}

const (
	rtreeMaxEntries = 16
	rtreeMinEntries = 4
)

// RTree is an in-memory R-tree with quadratic split, indexing
// rectangles (points are degenerate rectangles).
type RTree struct {
	root  *rtreeNode
	count int
}

type rtreeNode struct {
	leaf     bool
	rect     geo.Rect
	entries  []RectEntry  // leaf payloads
	children []*rtreeNode // internal children
}

// NewRTree returns an empty R-tree.
func NewRTree() *RTree {
	return &RTree{root: &rtreeNode{leaf: true, rect: geo.EmptyRect()}}
}

// Len returns the number of stored entries.
func (t *RTree) Len() int { return t.count }

// Bounds returns the bounding rectangle of all entries.
func (t *RTree) Bounds() geo.Rect { return t.root.rect }

// Insert adds an entry.
func (t *RTree) Insert(e RectEntry) {
	t.count++
	// Descend to the best leaf, remembering the path so overflow splits
	// can propagate upward without parent pointers.
	path := []*rtreeNode{t.root}
	n := t.root
	for !n.leaf {
		var best *rtreeNode
		bestGrowth, bestArea := 0.0, 0.0
		for _, c := range n.children {
			growth := c.rect.Union(e.Rect).Area() - c.rect.Area()
			if best == nil || growth < bestGrowth ||
				(growth == bestGrowth && c.rect.Area() < bestArea) {
				best, bestGrowth, bestArea = c, growth, c.rect.Area()
			}
		}
		n = best
		path = append(path, n)
	}
	n.entries = append(n.entries, e)
	// Walk the path bottom-up: refresh rects and split overflowing nodes.
	for i := len(path) - 1; i >= 0; i-- {
		node := path[i]
		node.rect = node.rect.Union(e.Rect)
		if len(node.entries) <= rtreeMaxEntries && len(node.children) <= rtreeMaxEntries {
			continue
		}
		a, b := splitNode(node)
		if i == 0 {
			t.root = &rtreeNode{
				rect:     a.rect.Union(b.rect),
				children: []*rtreeNode{a, b},
			}
			return
		}
		parent := path[i-1]
		for j, c := range parent.children {
			if c == node {
				parent.children[j] = a
				break
			}
		}
		parent.children = append(parent.children, b)
	}
}

// splitNode splits an overfull node using the quadratic algorithm and
// returns the two replacement nodes.
func splitNode(n *rtreeNode) (*rtreeNode, *rtreeNode) {
	if n.leaf {
		ra, rb := quadraticSplit(len(n.entries),
			func(i int) geo.Rect { return n.entries[i].Rect })
		a := &rtreeNode{leaf: true, rect: geo.EmptyRect()}
		b := &rtreeNode{leaf: true, rect: geo.EmptyRect()}
		for _, i := range ra {
			a.entries = append(a.entries, n.entries[i])
			a.rect = a.rect.Union(n.entries[i].Rect)
		}
		for _, i := range rb {
			b.entries = append(b.entries, n.entries[i])
			b.rect = b.rect.Union(n.entries[i].Rect)
		}
		return a, b
	}
	ra, rb := quadraticSplit(len(n.children),
		func(i int) geo.Rect { return n.children[i].rect })
	a := &rtreeNode{rect: geo.EmptyRect()}
	b := &rtreeNode{rect: geo.EmptyRect()}
	for _, i := range ra {
		a.children = append(a.children, n.children[i])
		a.rect = a.rect.Union(n.children[i].rect)
	}
	for _, i := range rb {
		b.children = append(b.children, n.children[i])
		b.rect = b.rect.Union(n.children[i].rect)
	}
	return a, b
}

// quadraticSplit partitions indices [0,n) into two groups using
// Guttman's quadratic seed/pick-next heuristic.
func quadraticSplit(n int, rectOf func(int) geo.Rect) (groupA, groupB []int) {
	// Pick seeds: the pair wasting the most area if grouped.
	seedA, seedB, worst := 0, 1, -1.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			waste := rectOf(i).Union(rectOf(j)).Area() - rectOf(i).Area() - rectOf(j).Area()
			if waste > worst {
				worst, seedA, seedB = waste, i, j
			}
		}
	}
	groupA = []int{seedA}
	groupB = []int{seedB}
	rectA, rectB := rectOf(seedA), rectOf(seedB)
	assigned := make([]bool, n)
	assigned[seedA], assigned[seedB] = true, true
	remaining := n - 2
	for remaining > 0 {
		// Force-assign if one group must take the rest to meet the minimum.
		if len(groupA)+remaining == rtreeMinEntries {
			for i := 0; i < n; i++ {
				if !assigned[i] {
					groupA = append(groupA, i)
					rectA = rectA.Union(rectOf(i))
					assigned[i] = true
				}
			}
			return groupA, groupB
		}
		if len(groupB)+remaining == rtreeMinEntries {
			for i := 0; i < n; i++ {
				if !assigned[i] {
					groupB = append(groupB, i)
					rectB = rectB.Union(rectOf(i))
					assigned[i] = true
				}
			}
			return groupA, groupB
		}
		// Pick the entry with the greatest preference difference.
		pick, pickDiff, pickToA := -1, -1.0, false
		for i := 0; i < n; i++ {
			if assigned[i] {
				continue
			}
			dA := rectA.Union(rectOf(i)).Area() - rectA.Area()
			dB := rectB.Union(rectOf(i)).Area() - rectB.Area()
			diff := dA - dB
			if diff < 0 {
				diff = -diff
			}
			if diff > pickDiff {
				pick, pickDiff, pickToA = i, diff, dA < dB
			}
		}
		if pickToA {
			groupA = append(groupA, pick)
			rectA = rectA.Union(rectOf(pick))
		} else {
			groupB = append(groupB, pick)
			rectB = rectB.Union(rectOf(pick))
		}
		assigned[pick] = true
		remaining--
	}
	return groupA, groupB
}

// Search returns all entries whose rectangle intersects query.
func (t *RTree) Search(query geo.Rect) []RectEntry {
	var out []RectEntry
	t.search(t.root, query, &out)
	return out
}

func (t *RTree) search(n *rtreeNode, query geo.Rect, out *[]RectEntry) {
	if !n.rect.Intersects(query) {
		return
	}
	if n.leaf {
		for _, e := range n.entries {
			if e.Rect.Intersects(query) {
				*out = append(*out, e)
			}
		}
		return
	}
	for _, c := range n.children {
		t.search(c, query, out)
	}
}

// RectNeighbor is a nearest-neighbor search result over rectangles.
type RectNeighbor struct {
	Entry RectEntry
	Dist  float64
}

// KNN returns the k entries whose rectangles are nearest to q (by
// minimum distance), ordered by increasing distance, using best-first
// traversal.
func (t *RTree) KNN(q geo.Point, k int) []RectNeighbor {
	if k <= 0 || t.count == 0 {
		return nil
	}
	pq := &rtreePQ{}
	heap.Push(pq, rtreePQItem{node: t.root, dist: t.root.rect.DistToPoint(q)})
	var out []RectNeighbor
	for pq.Len() > 0 && len(out) < k {
		item := heap.Pop(pq).(rtreePQItem)
		switch {
		case item.node == nil:
			out = append(out, RectNeighbor{Entry: item.entry, Dist: item.dist})
		case item.node.leaf:
			for _, e := range item.node.entries {
				heap.Push(pq, rtreePQItem{entry: e, dist: e.Rect.DistToPoint(q)})
			}
		default:
			for _, c := range item.node.children {
				heap.Push(pq, rtreePQItem{node: c, dist: c.rect.DistToPoint(q)})
			}
		}
	}
	return out
}

type rtreePQItem struct {
	node  *rtreeNode // nil for entry items
	entry RectEntry
	dist  float64
}

type rtreePQ []rtreePQItem

func (h rtreePQ) Len() int            { return len(h) }
func (h rtreePQ) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h rtreePQ) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *rtreePQ) Push(x interface{}) { *h = append(*h, x.(rtreePQItem)) }
func (h *rtreePQ) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}
