package index

import (
	"math"
	"sort"

	"sidq/internal/geo"
)

// BulkLoadRTree builds an R-tree from a static entry set with the
// Sort-Tile-Recursive (STR) packing algorithm: entries are sorted into
// vertical tiles by center X, each tile sorted by center Y, and leaves
// packed to capacity. STR trees have near-minimal overlap and are the
// standard choice for read-mostly workloads like historical SID.
func BulkLoadRTree(entries []RectEntry) *RTree {
	t := NewRTree()
	if len(entries) == 0 {
		return t
	}
	leaves := strPackLeaves(entries)
	level := leaves
	for len(level) > 1 {
		level = strPackNodes(level)
	}
	t.root = level[0]
	t.count = len(entries)
	return t
}

func strPackLeaves(entries []RectEntry) []*rtreeNode {
	sorted := append([]RectEntry(nil), entries...)
	n := len(sorted)
	leafCount := (n + rtreeMaxEntries - 1) / rtreeMaxEntries
	sliceCount := int(math.Ceil(math.Sqrt(float64(leafCount))))
	perSlice := sliceCount * rtreeMaxEntries
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].Rect.Center().X < sorted[j].Rect.Center().X
	})
	var leaves []*rtreeNode
	for lo := 0; lo < n; lo += perSlice {
		hi := lo + perSlice
		if hi > n {
			hi = n
		}
		slice := sorted[lo:hi]
		sort.Slice(slice, func(i, j int) bool {
			return slice[i].Rect.Center().Y < slice[j].Rect.Center().Y
		})
		for s := 0; s < len(slice); s += rtreeMaxEntries {
			e := s + rtreeMaxEntries
			if e > len(slice) {
				e = len(slice)
			}
			leaf := &rtreeNode{leaf: true, rect: geo.EmptyRect()}
			for _, ent := range slice[s:e] {
				leaf.entries = append(leaf.entries, ent)
				leaf.rect = leaf.rect.Union(ent.Rect)
			}
			leaves = append(leaves, leaf)
		}
	}
	return leaves
}

func strPackNodes(children []*rtreeNode) []*rtreeNode {
	n := len(children)
	nodeCount := (n + rtreeMaxEntries - 1) / rtreeMaxEntries
	sliceCount := int(math.Ceil(math.Sqrt(float64(nodeCount))))
	perSlice := sliceCount * rtreeMaxEntries
	sorted := append([]*rtreeNode(nil), children...)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].rect.Center().X < sorted[j].rect.Center().X
	})
	var out []*rtreeNode
	for lo := 0; lo < n; lo += perSlice {
		hi := lo + perSlice
		if hi > n {
			hi = n
		}
		slice := sorted[lo:hi]
		sort.Slice(slice, func(i, j int) bool {
			return slice[i].rect.Center().Y < slice[j].rect.Center().Y
		})
		for s := 0; s < len(slice); s += rtreeMaxEntries {
			e := s + rtreeMaxEntries
			if e > len(slice) {
				e = len(slice)
			}
			node := &rtreeNode{rect: geo.EmptyRect()}
			for _, c := range slice[s:e] {
				node.children = append(node.children, c)
				node.rect = node.rect.Union(c.rect)
			}
			out = append(out, node)
		}
	}
	return out
}
