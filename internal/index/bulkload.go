package index

import (
	"math"
	"runtime"
	"sort"
	"sync"

	"sidq/internal/geo"
)

// BulkLoadRTree builds an R-tree from a static entry set with the
// Sort-Tile-Recursive (STR) packing algorithm: entries are sorted into
// vertical tiles by center X, each tile sorted by center Y, and leaves
// packed to capacity. STR trees have near-minimal overlap and are the
// standard choice for read-mostly workloads like historical SID.
//
// The STR sorts use a total order (center X, then Y, then ID, then
// rect coordinates), so the packed tree is a pure function of the
// entry multiset — BulkLoadRTreeParallel produces the identical tree.
func BulkLoadRTree(entries []RectEntry) *RTree {
	return BulkLoadRTreeParallel(entries, 1)
}

// BulkLoadRTreeParallel is BulkLoadRTree with the two leaf-level sorts
// (the dominant cost) spread over a bounded worker pool: the X sort
// runs as parallel chunk sorts folded by pairwise merges, and the
// per-tile Y sorts run concurrently since tiles are disjoint. Packing
// the upper levels stays serial — they are a tiny fraction of the
// entries. workers <= 0 selects runtime.NumCPU(); the resulting tree
// is identical to the serial one for every worker count.
func BulkLoadRTreeParallel(entries []RectEntry, workers int) *RTree {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	t := NewRTree()
	if len(entries) == 0 {
		return t
	}
	level := strPackLeaves(entries, workers)
	for len(level) > 1 {
		level = strPackNodes(level)
	}
	t.root = level[0]
	t.count = len(entries)
	return t
}

// rectEntryLessX is the total order for the STR X pass: center X, with
// center Y, ID, and the rect coordinates breaking ties so no two
// distinct entries ever compare equal.
func rectEntryLessX(a, b RectEntry) bool {
	ca, cb := a.Rect.Center(), b.Rect.Center()
	if ca.X != cb.X {
		return ca.X < cb.X
	}
	if ca.Y != cb.Y {
		return ca.Y < cb.Y
	}
	if a.ID != b.ID {
		return a.ID < b.ID
	}
	return rectLess(a.Rect, b.Rect)
}

// rectEntryLessY is the total order for the per-tile Y pass.
func rectEntryLessY(a, b RectEntry) bool {
	ca, cb := a.Rect.Center(), b.Rect.Center()
	if ca.Y != cb.Y {
		return ca.Y < cb.Y
	}
	if ca.X != cb.X {
		return ca.X < cb.X
	}
	if a.ID != b.ID {
		return a.ID < b.ID
	}
	return rectLess(a.Rect, b.Rect)
}

func rectLess(a, b geo.Rect) bool {
	if a.Min.X != b.Min.X {
		return a.Min.X < b.Min.X
	}
	if a.Min.Y != b.Min.Y {
		return a.Min.Y < b.Min.Y
	}
	if a.Max.X != b.Max.X {
		return a.Max.X < b.Max.X
	}
	return a.Max.Y < b.Max.Y
}

// parallelSortMin is the input size below which sortEntries ignores the
// worker count: goroutine and merge overhead dominates under this.
const parallelSortMin = 4096

// sortEntries sorts es by the given total order, using parallel chunk
// sorts + pairwise merges when workers > 1 and the input is large
// enough. Because less is a total order, the result is the unique
// sorted permutation regardless of path or worker count.
func sortEntries(es []RectEntry, less func(a, b RectEntry) bool, workers int) {
	n := len(es)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < parallelSortMin {
		sort.Slice(es, func(i, j int) bool { return less(es[i], es[j]) })
		return
	}

	// Sort `workers` contiguous chunks concurrently.
	bounds := make([]int, workers+1)
	for i := range bounds {
		bounds[i] = i * n / workers
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		s := es[bounds[i]:bounds[i+1]]
		wg.Add(1)
		go func() {
			defer wg.Done()
			sort.Slice(s, func(i, j int) bool { return less(s[i], s[j]) })
		}()
	}
	wg.Wait()

	// Fold sorted runs with pairwise merges, ping-ponging between es
	// and a single scratch buffer.
	buf := make([]RectEntry, n)
	src, dst := es, buf
	for len(bounds) > 2 {
		next := make([]int, 0, len(bounds)/2+2)
		next = append(next, 0)
		var mg sync.WaitGroup
		i := 0
		for ; i+2 < len(bounds); i += 2 {
			lo, mid, hi := bounds[i], bounds[i+1], bounds[i+2]
			mg.Add(1)
			go func() {
				defer mg.Done()
				mergeRuns(dst, src, lo, mid, hi, less)
			}()
			next = append(next, hi)
		}
		if i+1 < len(bounds) { // odd run out: carry it over
			copy(dst[bounds[i]:bounds[i+1]], src[bounds[i]:bounds[i+1]])
			next = append(next, bounds[i+1])
		}
		mg.Wait()
		src, dst = dst, src
		bounds = next
	}
	if &src[0] != &es[0] {
		copy(es, src)
	}
}

// mergeRuns merges the sorted runs src[lo:mid] and src[mid:hi] into
// dst[lo:hi], taking from the left run on ties.
func mergeRuns(dst, src []RectEntry, lo, mid, hi int, less func(a, b RectEntry) bool) {
	i, j := lo, mid
	for k := lo; k < hi; k++ {
		if i < mid && (j >= hi || !less(src[j], src[i])) {
			dst[k] = src[i]
			i++
		} else {
			dst[k] = src[j]
			j++
		}
	}
}

func strPackLeaves(entries []RectEntry, workers int) []*rtreeNode {
	sorted := append([]RectEntry(nil), entries...)
	n := len(sorted)
	leafCount := (n + rtreeMaxEntries - 1) / rtreeMaxEntries
	sliceCount := int(math.Ceil(math.Sqrt(float64(leafCount))))
	perSlice := sliceCount * rtreeMaxEntries
	sortEntries(sorted, rectEntryLessX, workers)

	// Tiles are disjoint subslices, so their Y sorts can run
	// concurrently; packing afterwards walks them in order, keeping the
	// leaf sequence identical to the serial pass.
	type tile struct{ lo, hi int }
	var tiles []tile
	for lo := 0; lo < n; lo += perSlice {
		hi := lo + perSlice
		if hi > n {
			hi = n
		}
		tiles = append(tiles, tile{lo, hi})
	}
	if workers > 1 && len(tiles) > 1 {
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for _, tl := range tiles {
			s := sorted[tl.lo:tl.hi]
			wg.Add(1)
			sem <- struct{}{}
			go func() {
				defer wg.Done()
				sortEntries(s, rectEntryLessY, 1)
				<-sem
			}()
		}
		wg.Wait()
	} else {
		for _, tl := range tiles {
			sortEntries(sorted[tl.lo:tl.hi], rectEntryLessY, 1)
		}
	}

	var leaves []*rtreeNode
	for _, tl := range tiles {
		slice := sorted[tl.lo:tl.hi]
		for s := 0; s < len(slice); s += rtreeMaxEntries {
			e := s + rtreeMaxEntries
			if e > len(slice) {
				e = len(slice)
			}
			leaf := &rtreeNode{leaf: true, rect: geo.EmptyRect()}
			for _, ent := range slice[s:e] {
				leaf.entries = append(leaf.entries, ent)
				leaf.rect = leaf.rect.Union(ent.Rect)
			}
			leaves = append(leaves, leaf)
		}
	}
	return leaves
}

func strPackNodes(children []*rtreeNode) []*rtreeNode {
	n := len(children)
	nodeCount := (n + rtreeMaxEntries - 1) / rtreeMaxEntries
	sliceCount := int(math.Ceil(math.Sqrt(float64(nodeCount))))
	perSlice := sliceCount * rtreeMaxEntries
	sorted := append([]*rtreeNode(nil), children...)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].rect.Center().X < sorted[j].rect.Center().X
	})
	var out []*rtreeNode
	for lo := 0; lo < n; lo += perSlice {
		hi := lo + perSlice
		if hi > n {
			hi = n
		}
		slice := sorted[lo:hi]
		sort.Slice(slice, func(i, j int) bool {
			return slice[i].rect.Center().Y < slice[j].rect.Center().Y
		})
		for s := 0; s < len(slice); s += rtreeMaxEntries {
			e := s + rtreeMaxEntries
			if e > len(slice) {
				e = len(slice)
			}
			node := &rtreeNode{rect: geo.EmptyRect()}
			for _, c := range slice[s:e] {
				node.children = append(node.children, c)
				node.rect = node.rect.Union(c.rect)
			}
			out = append(out, node)
		}
	}
	return out
}
