// Airquality: a low-cost environmental sensor network.
//
// A smooth spatiotemporal pollution field is simulated and observed by
// a sparse, noisy, occasionally-failing sensor network (the classic
// low-cost air-quality deployment). The example exercises the STID
// side of the cleaning stack:
//
//  1. spatiotemporal outlier detection and consensus repair of spikes;
//
//  2. interpolation of the field at unsampled locations (IDW vs
//     Gaussian kernel vs trend+residual), scored against the hidden
//     ground truth;
//
//  3. bias-corrected fusion with a second, cheaper sensor fleet;
//
//  4. LTC compression of one sensor's day-long series.
//
//     go run ./examples/airquality
package main

import (
	"fmt"
	"math"
	"math/rand"

	"sidq/internal/faults"
	"sidq/internal/geo"
	"sidq/internal/outlier"
	"sidq/internal/reduce"
	"sidq/internal/simulate"
	"sidq/internal/stid"
	"sidq/internal/uncertain"
)

func main() {
	field := simulate.NewField(simulate.FieldOptions{Seed: 1})
	_, readings := simulate.SensorNetwork(field, simulate.SensorNetworkOptions{
		NumSensors: 40, Interval: 300, Duration: 7200, NoiseSigma: 1.5, DropRate: 0.05, Seed: 2,
	})
	corrupted, flags := simulate.InjectValueOutliers(readings, 0.05, 70, 3)
	fmt.Printf("network: 40 sensors, %d readings (5%% dropout, 5%% spikes)\n\n", len(corrupted))

	// 1. Detect and repair spikes.
	detected := outlier.SpatioTemporal(corrupted,
		outlier.TemporalOptions{}, outlier.SpatialOptions{Neighbors: 6, TimeWindow: 10})
	score := outlier.Evaluate(detected, flags)
	repaired, nRepaired := faults.RepairThematic(corrupted, detected, 200, 600)
	fmt.Printf("spike detection: precision=%.2f recall=%.2f; %d values repaired by consensus\n",
		score.Precision(), score.Recall(), nRepaired)
	fmt.Printf("mean abs error vs truth: corrupted %.2f -> repaired %.2f\n\n",
		maeVsField(field, corrupted), maeVsField(field, repaired))

	// 2. Interpolate the field at 200 random unsampled points.
	idw := uncertain.IDW{Readings: repaired, TimeWindow: 900}
	gk := uncertain.GaussianKernel{Readings: repaired, SpaceSigma: 150, TimeSigma: 900}
	tr := uncertain.NewTrendResidual(repaired, 2, 900)
	rng := rand.New(rand.NewSource(4))
	var eI, eG, eT float64
	const probes = 200
	for i := 0; i < probes; i++ {
		pos := geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
		tm := rng.Float64() * 7200
		truth := field.Value(pos, tm)
		if v, ok := idw.Estimate(pos, tm); ok {
			eI += math.Abs(v - truth)
		}
		if v, ok := gk.Estimate(pos, tm); ok {
			eG += math.Abs(v - truth)
		}
		if v, ok := tr.Estimate(pos, tm); ok {
			eT += math.Abs(v - truth)
		}
	}
	fmt.Printf("interpolation MAE at unsampled points: IDW=%.2f kernel=%.2f trend+residual=%.2f\n\n",
		eI/probes, eG/probes, eT/probes)

	// 3. Fuse with a cheaper, biased second fleet.
	_, cheap := simulate.SensorNetwork(field, simulate.SensorNetworkOptions{
		NumSensors: 40, Interval: 300, Duration: 7200, NoiseSigma: 5, Seed: 5,
	})
	for i := range cheap {
		cheap[i].Value += 18 // systematic calibration offset
	}
	fusion := uncertain.FuseSources([]uncertain.SourceReadings{
		{Source: "reference", Readings: repaired},
		{Source: "low-cost", Readings: cheap},
	}, 150)
	fmt.Printf("fusion: estimated low-cost bias %.1f (true 18.0), weights ref=%.2f cheap=%.2f\n",
		fusion.Biases["low-cost"]-fusion.Biases["reference"],
		fusion.Weights["reference"], fusion.Weights["low-cost"])
	fmt.Printf("fused MAE %.2f (low-cost alone %.2f)\n\n",
		maeVsField(field, fusion.Fused), maeVsField(field, cheap))

	// 4. Compress one sensor's series with LTC at eps=1.0.
	series := stid.NewSeries(repaired)[0]
	samples := make([]reduce.Sample, len(series.Readings))
	for i, r := range series.Readings {
		samples[i] = reduce.Sample{T: r.T, V: r.Value}
	}
	kept := reduce.LTC(samples, 1.0)
	fmt.Printf("LTC on sensor %s: %d -> %d samples (%.1fx), max reconstruction error %.2f\n",
		series.SensorID, len(samples), len(kept),
		reduce.CompressionRatio(len(samples), len(kept)),
		reduce.MaxReconstructionError(samples, kept))
}

func maeVsField(f *simulate.Field, rs []stid.Reading) float64 {
	if len(rs) == 0 {
		return 0
	}
	var sum float64
	for _, r := range rs {
		sum += math.Abs(r.Value - f.Value(r.Pos, r.T))
	}
	return sum / float64(len(rs))
}
