// Privacyshare: the paper's "secure SID sharing" open issue in action.
//
// Two organizations hold location data they cannot pool:
//
//  1. a facilities operator outsources its asset locations to an
//     untrusted cloud and still answers exact range queries — the
//     privacy-preserving outsourcing trend (spatial transformation +
//     encryption, internal/private);
//
//  2. a consortium of taxi companies trains a shared traffic-volume
//     model without any company revealing raw trips — the federated
//     learning trend (internal/decide.FederatedVolume).
//
//     go run ./examples/privacyshare
package main

import (
	"fmt"
	"math/rand"

	"sidq/internal/decide"
	"sidq/internal/geo"
	"sidq/internal/private"
)

func main() {
	outsourcing()
	fmt.Println()
	federation()
}

func outsourcing() {
	fmt.Println("-- private outsourcing --")
	scheme := private.NewScheme([]byte("facility-master-key"), 100)
	server := private.NewServer() // the untrusted party
	rng := rand.New(rand.NewSource(1))
	truth := make([]geo.Point, 500)
	var records []private.Record
	for i := range truth {
		truth[i] = geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
		records = append(records, scheme.Encrypt(uint64(i), truth[i],
			[]byte(fmt.Sprintf("asset-%03d", i))))
	}
	server.Store(records)
	fmt.Printf("outsourced %d encrypted assets; server sees only %d-char tokens\n",
		len(records), len(records[0].Token))

	client := &private.Client{Scheme: scheme}
	rect := geo.RectFromCenter(geo.Pt(400, 600), 100, 100)
	results, err := client.RangeQuery(server, rect)
	if err != nil {
		panic(err)
	}
	want := 0
	for _, p := range truth {
		if rect.Contains(p) {
			want++
		}
	}
	fmt.Printf("range query: %d results (plaintext baseline %d), server over-fetched %d records\n",
		len(results), want, server.Fetched()-len(results))
}

func federation() {
	fmt.Println("-- federated volume learning --")
	bounds := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1000, 1000)}
	rng := rand.New(rand.NewSource(2))
	truthGrid := decide.NewVolumeGrid(bounds, 8, 8)
	companies := []struct {
		name string
		rate float64
		grid *decide.VolumeGrid
	}{
		{"redcab", 0.15, decide.NewVolumeGrid(bounds, 8, 8)},
		{"bluecab", 0.10, decide.NewVolumeGrid(bounds, 8, 8)},
		{"greencab", 0.05, decide.NewVolumeGrid(bounds, 8, 8)},
	}
	for i := 0; i < 30000; i++ {
		var p geo.Point
		if rng.Float64() < 0.7 {
			p = geo.Pt(rng.Float64()*1000, 300+rng.NormFloat64()*120)
		} else {
			p = geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
		}
		truthGrid.Add(p)
		r := rng.Float64()
		acc := 0.0
		for _, c := range companies {
			acc += c.rate
			if r < acc {
				c.grid.Add(p)
				break
			}
		}
	}
	truth := truthGrid.Counts()
	fed := decide.NewFederatedVolume(64)
	var updates []decide.LocalUpdate
	for _, c := range companies {
		u := decide.LocalEstimate(c.grid, c.rate, 1)
		updates = append(updates, u)
		fmt.Printf("%-9s local MAE %.1f (%.0f probes stay on-premise)\n",
			c.name, decide.MAE(c.grid.InferVolumes(c.rate, 1), truth), u.Samples)
	}
	if err := fed.Aggregate(updates); err != nil {
		panic(err)
	}
	fmt.Printf("federated global MAE %.1f — no raw trip ever left a company\n",
		decide.MAE(fed.Global(), truth))
}
