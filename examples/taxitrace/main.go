// Taxitrace: cleaning and compressing an urban GPS fleet.
//
// A synthetic city is generated, vehicles drive shortest-path trips,
// and their GPS traces are corrupted with noise, gross outliers, and
// sparse sampling. The example then walks the §2.2 stack end to end:
//
//  1. outlier detection (constraint, statistical, prediction-based)
//     scored against the injected ground truth;
//
//  2. inference-based route recovery (HMM map matching);
//
//  3. error-bounded compression of the recovered trajectories and
//     network-constrained encoding of the matched route.
//
//     go run ./examples/taxitrace
package main

import (
	"fmt"

	"sidq/internal/outlier"
	"sidq/internal/reduce"
	"sidq/internal/roadnet"
	"sidq/internal/simulate"
	"sidq/internal/trajectory"
	"sidq/internal/uncertain"
)

func main() {
	g := roadnet.GridCity(roadnet.GridCityOptions{
		NX: 10, NY: 10, Spacing: 120, Jitter: 8, RemoveFrac: 0.2, Seed: 1,
	})
	snapper := roadnet.NewSnapper(g, 100)
	trips := simulate.TripsWithRoutes(g, simulate.TripOptions{
		NumObjects: 5, MinHops: 10, Speed: 12, SampleInterval: 1, Seed: 2,
	})
	fmt.Printf("city: %d intersections, %d road segments; fleet: %d trips\n\n",
		g.NumNodes(), g.NumEdges(), len(trips))

	for i, trip := range trips {
		// Corrupt: thin to 1/5 sampling, add 10 m noise, 4% outliers.
		noisy := simulate.AddGaussianNoise(trip.Truth.Thin(5), 10, int64(10+i))
		corrupted, truthFlags := simulate.InjectOutliers(noisy, 0.04, 150, int64(20+i))

		// 1. Outlier removal, three ways.
		constraint := outlier.Evaluate(outlier.SpeedConstraint(corrupted, 25), truthFlags)
		statistical := outlier.Evaluate(outlier.Statistical(corrupted, outlier.StatisticalOptions{}), truthFlags)
		repaired, predFlags := outlier.Prediction(corrupted, outlier.PredictionOptions{
			MeasNoise: 10, Threshold: 5, Repair: true,
		})
		prediction := outlier.Evaluate(predFlags, truthFlags)
		fmt.Printf("trip %d (%d pts): outlier F1 constraint=%.2f statistical=%.2f prediction=%.2f\n",
			i, corrupted.Len(), constraint.F1(), statistical.F1(), prediction.F1())

		// 2. Route recovery on the repaired trace.
		res, err := uncertain.MapMatch(g, snapper, repaired, uncertain.MatchOptions{EmissionSigma: 12})
		if err != nil {
			fmt.Printf("  map matching failed: %v\n", err)
			continue
		}
		fmt.Printf("  route recovery: accuracy=%.2f, error %.1f m -> %.1f m, %d -> %d pts\n",
			uncertain.RouteAccuracy(res.Route, trip.Path.Edges),
			trajectory.MeanErrorAgainst(corrupted, trip.Truth),
			trajectory.MeanErrorAgainst(res.Recovered, trip.Truth),
			corrupted.Len(), res.Recovered.Len())

		// 3. Compression: simplify the recovered trace with a 10 m SED
		// bound, and encode the matched route against the network.
		simplified := reduce.DouglasPeuckerSED(res.Recovered, 10)
		times := make([]float64, len(res.Route))
		for j := range times {
			if j < res.Recovered.Len() {
				times[j] = res.Recovered.Points[j].T
			}
		}
		encoded := reduce.EncodeNetworkTrip(reduce.NetworkTrip{Route: res.Route, Times: times}, 1)
		fmt.Printf("  compression: DP-SED %.1fx (max err %.1f m); network-constrained %.1fx (%d bytes)\n\n",
			reduce.CompressionRatio(res.Recovered.Len(), simplified.Len()),
			reduce.VerifySED(res.Recovered, simplified),
			float64(reduce.RawTripBytes(res.Recovered.Len()))/float64(len(encoded)),
			len(encoded))
	}
}
