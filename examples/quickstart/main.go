// Quickstart: the 60-second tour of sidq.
//
// It simulates a small fleet of vehicles with realistic GPS defects
// (noise, outliers, dropouts, duplicates), measures the data quality,
// lets the DQ-aware planner choose a cleaning pipeline, runs it, and
// shows the before/after quality report.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"sidq/internal/core"
	"sidq/internal/geo"
	"sidq/internal/simulate"
	"sidq/internal/trajectory"
)

func main() {
	// 1. Simulate ground truth and corrupt it the way real IoT data is.
	region := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1000, 1000)}
	ds := &core.Dataset{
		Truth:            map[string]*trajectory.Trajectory{},
		Region:           region,
		ExpectedInterval: 1,
		MaxSpeed:         10,
		Now:              600,
	}
	for i := int64(0); i < 3; i++ {
		truth := simulate.RandomWalk(fmt.Sprintf("veh-%d", i), region, 600, 2, 1, i)
		ds.Truth[truth.ID] = truth
		dirty := simulate.AddGaussianNoise(truth, 6, 10+i)
		dirty, _ = simulate.InjectOutliers(dirty, 0.03, 120, 20+i)
		dirty = simulate.DropSamples(dirty, 0.2, 30+i)
		dirty = simulate.DuplicateSamples(dirty, 0.1, 40+i)
		ds.Trajectories = append(ds.Trajectories, dirty)
	}

	// 2. Assess: which DQ dimensions are hurting?
	before := ds.Assess()
	fmt.Println("quality before cleaning:")
	fmt.Print(before)

	// 3. Plan: the DQ-aware planner picks stages from the assessment.
	cleaned, stages, _ := core.PlanAndRun(ds, core.DefaultTargets())
	fmt.Println("\nplanned stages:")
	for _, s := range stages {
		fmt.Printf("  %s  (%s)\n", s.Name(), s.Task())
	}

	// 4. Re-assess.
	fmt.Println("\nquality after cleaning:")
	fmt.Print(cleaned.Assess())
}
