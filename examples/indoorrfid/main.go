// Indoorrfid: cleansing symbolic (RFID-style) tracking data.
//
// An object walks a corridor of proximity readers whose raw detections
// suffer false negatives (missed reads) and false positives
// (cross-reads from neighboring antennas) — the setting of the RFID
// data-cleansing literature. The example compares the three fault
// correction strategies and uses the cleaned symbolic trajectory to
// answer a "which zone at time t" tracking query.
//
//	go run ./examples/indoorrfid
package main

import (
	"fmt"

	"sidq/internal/faults"
	"sidq/internal/simulate"
)

func main() {
	world := simulate.Symbolic("tag-42", simulate.SymbolicOptions{
		NumReaders: 14, Spacing: 20, Range: 8, Epoch: 1, Speed: 2,
		FalseNeg: 0.3, FalsePos: 0.08, Seed: 7,
	})
	dep := faults.Deployment{Epoch: 1, MaxSpeed: 6}
	for _, r := range world.Readers {
		dep.Readers = append(dep.Readers, faults.ReaderInfo{ID: r.ID, Pos: r.Pos, Range: r.Range})
	}
	obs := map[float64][]string{}
	for _, e := range world.Epochs {
		obs[e] = nil
	}
	for _, d := range world.Detections {
		obs[d.T] = append(obs[d.T], d.ReaderID)
	}
	fmt.Printf("corridor: %d readers; %d epochs; %d raw detections (FN 30%%, FP 8%%)\n\n",
		len(world.Readers), len(world.Epochs), len(world.Detections))

	// Raw accuracy: an epoch is right if exactly the true reader fired.
	raw := 0
	for _, e := range world.Epochs {
		rs := obs[e]
		if (len(rs) == 1 && rs[0] == world.Truth[e]) || (len(rs) == 0 && world.Truth[e] == faults.None) {
			raw++
		}
	}
	fmt.Printf("raw epoch accuracy:        %.2f\n", float64(raw)/float64(len(world.Epochs)))

	rules := dep.ResolveConflicts(world.Epochs, obs)
	fmt.Printf("+ conflict resolution:     %.2f\n", faults.SequenceAccuracy(rules, world.Truth))

	imputed := dep.SmoothImpute(world.Epochs, rules, 5)
	fmt.Printf("+ smoothing imputation:    %.2f\n", faults.SequenceAccuracy(imputed, world.Truth))

	hmm := dep.HMMClean(world.Epochs, obs, 0.3, 0.08)
	fmt.Printf("HMM probabilistic cleanse: %.2f\n\n", faults.SequenceAccuracy(hmm, world.Truth))

	// Tracking query over the cleaned symbolic trajectory.
	for _, q := range []float64{10, 45, 90} {
		zone := hmm[q]
		label := zone
		if label == faults.None {
			label = "(between zones)"
		}
		truthLabel := world.Truth[q]
		if truthLabel == faults.None {
			truthLabel = "(between zones)"
		}
		fmt.Printf("where was tag-42 at t=%3.0f?  cleaned: %-15s truth: %s\n", q, label, truthLabel)
	}
}
