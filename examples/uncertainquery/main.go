// Uncertainquery: querying objects whose locations are uncertain.
//
// A fleet's positions are known only up to Gaussian error. The example
// runs the §2.3.1 query stack:
//
//  1. probabilistic range query with bound-based pruning;
//
//  2. probabilistic kNN by expected distance;
//
//  3. between-sample inference for a trajectory with a 90-second gap
//     (space-time prism feasibility and Markov-grid probability);
//
//  4. a continuous range query with safe-region communication
//     suppression over 200 ticks.
//
//     go run ./examples/uncertainquery
package main

import (
	"fmt"
	"math/rand"

	"sidq/internal/geo"
	"sidq/internal/uquery"
)

func main() {
	rng := rand.New(rand.NewSource(1))
	objs := make([]uquery.UncertainObject, 400)
	for i := range objs {
		sigma := 3 + rng.Float64()*20 // heterogeneous positioning quality
		objs[i] = uquery.GaussianObject{
			ID:    fmt.Sprintf("veh-%03d", i),
			Mean:  geo.Pt(rng.Float64()*1000, rng.Float64()*1000),
			Sigma: sigma,
		}
	}

	// 1. Probabilistic range query.
	rect := geo.RectFromCenter(geo.Pt(500, 500), 120, 120)
	res, st := uquery.ProbRange(objs, rect, 0.6)
	fmt.Printf("range query (P >= 0.6): %d of %d objects qualify; %d/%d pruned without integration\n",
		len(res), len(objs), st.Pruned, st.Candidates)
	for i, r := range res {
		if i >= 3 {
			fmt.Printf("  ... and %d more\n", len(res)-3)
			break
		}
		fmt.Printf("  %s with P=%.2f\n", r.ID, r.Prob)
	}

	// 2. Probabilistic kNN.
	knn, _ := uquery.ProbKNN(objs, geo.Pt(500, 500), 5)
	fmt.Println("\n5 nearest by expected distance:")
	for _, r := range knn {
		fmt.Printf("  %s  E[dist]=%.1f m\n", r.ID, r.ExpectedDist)
	}

	// 3. Between-sample inference: two fixes 90 s apart.
	prism := uquery.Prism{
		P1: geo.Pt(100, 500), P2: geo.Pt(800, 500),
		T1: 0, T2: 90, VMax: 15,
	}
	checkpoint := geo.RectFromCenter(geo.Pt(450, 620), 40, 40)
	fmt.Printf("\ncould the object have passed the checkpoint at t=45? prism says %v\n",
		prism.IntersectsRectAt(checkpoint, 45))
	grid := uquery.NewMarkovGrid(geo.Rect{Min: geo.Pt(0, 200), Max: geo.Pt(1000, 800)}, 20)
	dist := grid.Between(prism.P1, prism.T1, prism.P2, prism.T2, 5, 45)
	fmt.Printf("markov-grid probability of being inside it: %.3f (mean position %v)\n",
		grid.RangeProb(dist, checkpoint), grid.MeanOf(dist))

	// 4. Continuous query with safe regions.
	monitor := uquery.NewSafeRegionMonitor(rect)
	positions := make([]geo.Point, 60)
	for i := range positions {
		positions[i] = geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
	}
	for tick := 0; tick < 200; tick++ {
		for i := range positions {
			positions[i] = positions[i].Add(geo.Pt(rng.NormFloat64()*2.5, rng.NormFloat64()*2.5))
			monitor.Update(fmt.Sprintf("veh-%03d", i), positions[i])
		}
	}
	frac, reports, updates := monitor.Savings()
	fmt.Printf("\ncontinuous query over 200 ticks x 60 objects: %d/%d updates transmitted (%.0f%% saved)\n",
		reports, updates, frac*100)
	fmt.Printf("currently inside: %d objects\n", len(monitor.Result()))
}
