package sidq_test

// Cross-package integration tests: full end-to-end flows that span the
// substrate, cleaning, middleware, and exploitation layers.

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"sidq/internal/core"
	"sidq/internal/exp"
	"sidq/internal/geo"
	"sidq/internal/index"
	"sidq/internal/integrate"
	"sidq/internal/quality"
	"sidq/internal/reduce"
	"sidq/internal/roadnet"
	"sidq/internal/simulate"
	"sidq/internal/stream"
	"sidq/internal/trajectory"
	"sidq/internal/uncertain"
	"sidq/internal/uquery"
)

// TestEndToEndFleetFlow drives the full GPS-fleet story: simulate on a
// road network, corrupt, clean with the planned pipeline, map-match,
// compress, round-trip through CSV, index, and query — asserting the
// cleaned data answers queries better than the corrupted data.
func TestEndToEndFleetFlow(t *testing.T) {
	g := roadnet.GridCity(roadnet.GridCityOptions{NX: 10, NY: 10, Spacing: 120, Jitter: 8, RemoveFrac: 0.2, Seed: 1})
	snapper := roadnet.NewSnapper(g, 100)
	trips := simulate.TripsWithRoutes(g, simulate.TripOptions{NumObjects: 4, MinHops: 10, Speed: 12, SampleInterval: 1, Seed: 2})

	ds := &core.Dataset{
		Truth:            map[string]*trajectory.Trajectory{},
		Region:           g.Bounds(),
		ExpectedInterval: 1,
		MaxSpeed:         25,
		Now:              300,
	}
	for i, trip := range trips {
		ds.Truth[trip.Truth.ID] = trip.Truth
		dirty := simulate.AddGaussianNoise(trip.Truth, 8, int64(10+i))
		dirty, _ = simulate.InjectOutliers(dirty, 0.04, 150, int64(20+i))
		ds.Trajectories = append(ds.Trajectories, dirty)
	}

	cleaned, stages, _ := core.PlanAndRun(ds, core.DefaultTargets())
	if len(stages) == 0 {
		t.Fatal("planner found nothing to do on dirty data")
	}
	if cleaned.Assess()[quality.Accuracy] <= ds.Assess()[quality.Accuracy] {
		t.Fatal("cleaning did not improve accuracy")
	}

	// Map-match the cleaned trajectories and compress the routes.
	for i, tr := range cleaned.Trajectories {
		res, err := uncertain.MapMatch(g, snapper, tr, uncertain.MatchOptions{EmissionSigma: 10})
		if err != nil {
			t.Fatalf("map match %d: %v", i, err)
		}
		if acc := uncertain.RouteAccuracy(res.Route, trips[i].Path.Edges); acc < 0.5 {
			t.Fatalf("trip %d route accuracy %v", i, acc)
		}
		times := make([]float64, len(res.Route))
		for j := range times {
			times[j] = float64(j)
		}
		enc := reduce.EncodeNetworkTrip(reduce.NetworkTrip{Route: res.Route, Times: times}, 1)
		dec, err := reduce.DecodeNetworkTrip(enc)
		if err != nil || len(dec.Route) != len(res.Route) {
			t.Fatalf("trip %d round trip: %v", i, err)
		}
	}

	// CSV round trip of the cleaned data.
	var buf bytes.Buffer
	if err := trajectory.WriteCSV(&buf, cleaned.Trajectories); err != nil {
		t.Fatal(err)
	}
	back, err := trajectory.ReadCSV(&buf)
	if err != nil || len(back) != len(cleaned.Trajectories) {
		t.Fatalf("csv round trip: %v (%d)", err, len(back))
	}

	// Query layer: cleaned index answers closer to the truth index.
	truthIdx := index.NewTrajectoryIndex(30)
	cleanIdx := index.NewTrajectoryIndex(30)
	dirtyIdx := index.NewTrajectoryIndex(30)
	for _, tr := range ds.Truth {
		truthIdx.Add(tr)
	}
	for _, tr := range cleaned.Trajectories {
		cleanIdx.Add(tr)
	}
	for _, tr := range ds.Trajectories {
		dirtyIdx.Add(tr)
	}
	agree := func(ix *index.TrajectoryIndex) int {
		n := 0
		for q := 0; q < 30; q++ {
			rect := geo.RectFromCenter(geo.Pt(float64(q*37%1000), float64(q*73%1000)), 80, 80)
			a := ix.RangeQuery(rect, float64(q), float64(q+40))
			b := truthIdx.RangeQuery(rect, float64(q), float64(q+40))
			if fmt.Sprint(a) == fmt.Sprint(b) {
				n++
			}
		}
		return n
	}
	if agree(cleanIdx) < agree(dirtyIdx) {
		t.Fatalf("cleaned index agreement %d < dirty %d", agree(cleanIdx), agree(dirtyIdx))
	}
}

// TestEndToEndSensorFlow drives the STID story: field -> corrupted
// readings -> repair -> interpolation -> attachment to a trajectory.
func TestEndToEndSensorFlow(t *testing.T) {
	field := simulate.NewField(simulate.FieldOptions{Seed: 3})
	_, readings := simulate.SensorNetwork(field, simulate.SensorNetworkOptions{
		NumSensors: 30, Interval: 300, Duration: 3600, NoiseSigma: 1, Seed: 4,
	})
	corrupted, _ := simulate.InjectValueOutliers(readings, 0.05, 70, 5)

	ds := &core.Dataset{
		Readings:        corrupted,
		TruthField:      field.Value,
		Region:          geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1000, 1000)},
		ReadingInterval: 300,
		NumSensors:      30,
		Duration:        3600,
	}
	cleaned, _ := core.NewPipeline(core.ThematicRepairStage{}).Run(ds)
	_, rdBefore := ds.AssessParts()
	_, rdAfter := cleaned.AssessParts()
	if rdAfter[quality.Accuracy] <= rdBefore[quality.Accuracy] {
		t.Fatal("thematic repair did not improve readings accuracy")
	}

	// Attach the repaired readings to a vehicle's trajectory.
	veh := simulate.RandomWalk("veh", geo.Rect{Min: geo.Pt(100, 100), Max: geo.Pt(900, 900)}, 60, 3, 60, 6)
	attached := integrate.AttachReadings(veh, cleaned.Readings, 150, 900)
	okCount := 0
	var mae float64
	for _, ap := range attached {
		if !ap.OK {
			continue
		}
		okCount++
		mae += math.Abs(ap.Value - field.Value(ap.Pos, ap.T))
	}
	if okCount < veh.Len()/2 {
		t.Fatalf("attached only %d points", okCount)
	}
	if mae/float64(okCount) > 10 {
		t.Fatalf("exposure MAE = %v", mae/float64(okCount))
	}
}

// TestQueryLayerConsistency cross-checks the two uncertain-object
// models: a discrete object built from Gaussian samples must agree
// with the analytic Gaussian on range probabilities.
func TestQueryLayerConsistency(t *testing.T) {
	g := uquery.GaussianObject{ID: "g", Mean: geo.Pt(100, 100), Sigma: 12}
	// Build a matching discrete object from deterministic quadrature
	// points of the same Gaussian (grid sampling).
	var samples []uquery.WeightedSample
	for dx := -4.0; dx <= 4.0; dx += 0.125 {
		for dy := -4.0; dy <= 4.0; dy += 0.125 {
			p := geo.Pt(100+dx*12, 100+dy*12)
			w := math.Exp(-(dx*dx + dy*dy) / 2)
			samples = append(samples, uquery.WeightedSample{Pos: p, W: w})
		}
	}
	d := uquery.NewDiscreteObject("d", samples)
	// Rect edges are chosen off the sample lattice (multiples of 6 m
	// from the mean): a mass point exactly on an inclusive boundary
	// would be fully counted where the integral counts half.
	for _, rect := range []geo.Rect{
		geo.RectFromCenter(geo.Pt(101, 99), 15.5, 14.5),
		geo.RectFromCenter(geo.Pt(121, 101), 20.5, 29.5),
		geo.RectFromCenter(geo.Pt(300, 300), 30, 30),
	} {
		pg := g.ProbInRect(rect)
		pd := d.ProbInRect(rect)
		if math.Abs(pg-pd) > 0.08 {
			t.Fatalf("rect %v: gaussian %v vs discrete %v", rect, pg, pd)
		}
	}
}

// TestExperimentHarnessSmoke runs two representative experiments through
// the public harness to guard the bench entry points.
func TestExperimentHarnessSmoke(t *testing.T) {
	if tb := exp.E7(1); len(tb.Rows) != 4 {
		t.Fatalf("E7 rows = %d", len(tb.Rows))
	}
	if s := exp.T1(1); len(s) == 0 {
		t.Fatal("T1 empty")
	}
}

// TestEndToEndEdgeStreamingFlow wires the streaming/edge story: GPS
// points arrive out of order, are reordered under a watermark, cleaned
// online (prediction repair semantics via the anomaly detector), map
// matched with a fixed-lag online matcher, and fed to a safe-region
// monitor — all incrementally, the way an edge deployment would run.
func TestEndToEndEdgeStreamingFlow(t *testing.T) {
	g := roadnet.GridCity(roadnet.GridCityOptions{NX: 8, NY: 8, Spacing: 120, Seed: 11})
	snapper := roadnet.NewSnapper(g, 100)
	trip := simulate.TripsWithRoutes(g, simulate.TripOptions{NumObjects: 1, MinHops: 10, Speed: 12, SampleInterval: 1, Seed: 12})[0]
	noisy := simulate.AddGaussianNoise(trip.Truth, 8, 13)

	// Deliver with bounded disorder.
	delivered := append([]trajectory.Point(nil), noisy.Points...)
	rng := rand.New(rand.NewSource(14))
	for i := range delivered {
		j := i + rng.Intn(3)
		if j < len(delivered) {
			delivered[i], delivered[j] = delivered[j], delivered[i]
		}
	}

	reorder := stream.NewReorderer[trajectory.Point](5)
	matcher := uncertain.NewOnlineMatcher(g, snapper, uncertain.MatchOptions{EmissionSigma: 10}, 5)
	query := geo.RectFromCenter(trip.Truth.Points[trip.Truth.Len()/2].Pos, 150, 150)
	monitor := uquery.NewSafeRegionMonitor(query)

	var matched []uncertain.Matched
	process := func(evs []stream.Event[trajectory.Point]) {
		for _, ev := range evs {
			for _, m := range matcher.Push(ev.Value) {
				matched = append(matched, m)
				monitor.Update("veh", m.Snap.Pos)
			}
		}
	}
	for _, p := range delivered {
		process(reorder.Push(stream.Event[trajectory.Point]{Time: p.T, Value: p}))
	}
	process(reorder.Flush())
	for _, m := range matcher.Flush() {
		matched = append(matched, m)
		monitor.Update("veh", m.Snap.Pos)
	}

	if len(matched)+reorder.LateCount() != noisy.Len() {
		t.Fatalf("pipeline lost points: %d + %d != %d", len(matched), reorder.LateCount(), noisy.Len())
	}
	// Matched output is time-ordered and network-constrained.
	for i := 1; i < len(matched); i++ {
		if matched[i].Point.T < matched[i-1].Point.T {
			t.Fatal("output out of order")
		}
	}
	var matchErr, rawErr float64
	for _, m := range matched {
		tp, _ := trip.Truth.LocationAt(m.Point.T)
		matchErr += m.Snap.Pos.Dist(tp)
	}
	for _, p := range noisy.Points {
		tp, _ := trip.Truth.LocationAt(p.T)
		rawErr += p.Pos.Dist(tp)
	}
	if matchErr/float64(len(matched)) >= rawErr/float64(noisy.Len()) {
		t.Fatalf("online matching did not improve error: %v vs %v",
			matchErr/float64(len(matched)), rawErr/float64(noisy.Len()))
	}
	// The vehicle passed through the query region at mid-trip, so the
	// monitor must have seen it enter at some point.
	frac, reports, updates := monitor.Savings()
	if updates == 0 || reports == 0 {
		t.Fatal("monitor saw nothing")
	}
	_ = frac
}
